module Graph = Ss_topology.Graph
module Dynamic = Ss_topology.Dynamic
module Builders = Ss_topology.Builders
module Engine = Ss_engine.Engine
module Churn = Ss_engine.Churn
module Fault = Ss_engine.Fault
module Scheduler = Ss_engine.Scheduler
module Config = Ss_cluster.Config
module Algorithm = Ss_cluster.Algorithm
module Assignment = Ss_cluster.Assignment
module Distributed = Ss_cluster.Distributed
module Legitimacy = Ss_cluster.Legitimacy
module Counter = Ss_stats.Counter
module Rng = Ss_prng.Rng

let rng () = Rng.create ~seed:1234

(* ---------------------------------------------------------------- Dynamic *)

let test_dynamic_crash_isolates () =
  let dyn = Dynamic.create (Builders.path 5) in
  Alcotest.(check bool) "pristine at start" true (Dynamic.pristine dyn);
  Alcotest.(check bool) "snapshot is base while pristine" true
    (Dynamic.snapshot dyn == Dynamic.base dyn);
  Alcotest.(check bool) "crash applies" true (Dynamic.crash dyn 2);
  Alcotest.(check bool) "crash is idempotent" false (Dynamic.crash dyn 2);
  let g = Dynamic.snapshot dyn in
  Alcotest.(check int) "crashed node isolated" 0 (Graph.degree g 2);
  Alcotest.(check (array int)) "neighbor loses the edge" [| 0 |]
    (Graph.neighbors g 1);
  Alcotest.(check bool) "mask reflects the crash" false (Dynamic.is_alive dyn 2);
  Alcotest.(check int) "alive count" 4 (Dynamic.alive_count dyn);
  Alcotest.(check (list int)) "crashed list" [ 2 ]
    (Dynamic.nodes_with dyn Dynamic.Crashed)

let test_dynamic_transitions () =
  let dyn = Dynamic.create (Builders.path 3) in
  Alcotest.(check bool) "wake needs asleep" false (Dynamic.wake dyn 0);
  Alcotest.(check bool) "join needs crashed" false (Dynamic.join dyn 0);
  Alcotest.(check bool) "sleep applies" true (Dynamic.sleep dyn 0);
  Alcotest.(check bool) "sleeping node can crash" true (Dynamic.crash dyn 0);
  Alcotest.(check bool) "crashed node cannot wake" false (Dynamic.wake dyn 0);
  Alcotest.(check bool) "join revives" true (Dynamic.join dyn 0);
  Alcotest.(check bool) "alive again" true (Dynamic.is_alive dyn 0);
  Alcotest.(check bool) "back to pristine" true (Dynamic.pristine dyn)

let test_dynamic_link_toggle () =
  let dyn = Dynamic.create (Builders.complete 4) in
  Alcotest.(check bool) "down applies" true (Dynamic.link_down dyn 1 0);
  Alcotest.(check bool) "down is idempotent" false (Dynamic.link_down dyn 0 1);
  let g = Dynamic.snapshot dyn in
  Alcotest.(check bool) "edge gone" false (Graph.mem_edge g 0 1);
  Alcotest.(check bool) "reverse gone too" false (Graph.mem_edge g 1 0);
  Alcotest.(check bool) "other edges intact" true (Graph.mem_edge g 0 2);
  Alcotest.(check (list (pair int int))) "down list normalized" [ (0, 1) ]
    (Dynamic.down_list dyn);
  Alcotest.(check bool) "up restores" true (Dynamic.link_up dyn 0 1);
  Alcotest.(check bool) "up is idempotent" false (Dynamic.link_up dyn 0 1);
  Alcotest.(check bool) "restored edge back" true
    (Graph.mem_edge (Dynamic.snapshot dyn) 0 1);
  Alcotest.check_raises "non-edge rejected"
    (Invalid_argument "Dynamic: not a link of the base graph") (fun () ->
      ignore (Dynamic.link_down (Dynamic.create (Builders.path 3)) 0 2))

let test_dynamic_snapshot_cached () =
  let dyn = Dynamic.create (Builders.cycle 6) in
  ignore (Dynamic.crash dyn 0);
  let a = Dynamic.snapshot dyn in
  let b = Dynamic.snapshot dyn in
  Alcotest.(check bool) "same physical graph without events" true (a == b);
  ignore (Dynamic.join dyn 0);
  let c = Dynamic.snapshot dyn in
  Alcotest.(check bool) "rebuilt after event" true (c != b);
  Alcotest.(check int) "full cycle restored" 6 (Graph.node_count c);
  Alcotest.(check int) "edges restored" 6 (Graph.edge_count c)

let test_dynamic_snapshot_positions_carried () =
  (* Patched snapshots must keep carrying the base graph's positions. *)
  let rng = Rng.create ~seed:7 in
  let graph = Builders.random_geometric_count rng ~count:30 ~radius:0.3 in
  let dyn = Dynamic.create graph in
  ignore (Dynamic.crash dyn 3);
  let snap = Dynamic.snapshot dyn in
  Alcotest.(check bool) "positions shared with the base" true
    (Graph.positions snap == Graph.positions graph)

let test_dynamic_back_to_pristine_restores_base () =
  (* Returning to the pristine state hands back the base graph itself, no
     matter how the overlay got there. *)
  let dyn = Dynamic.create (Builders.complete 5) in
  ignore (Dynamic.link_down dyn 0 1);
  ignore (Dynamic.crash dyn 2);
  ignore (Dynamic.snapshot dyn);
  ignore (Dynamic.link_up dyn 0 1);
  ignore (Dynamic.join dyn 2);
  Alcotest.(check bool) "pristine" true (Dynamic.pristine dyn);
  Alcotest.(check bool) "snapshot is the base graph" true
    (Dynamic.snapshot dyn == Dynamic.base dyn)

(* The incremental-snapshot acceptance property: over random event plans —
   crash/join/sleep/wake/link-down/link-up in several bursts with a
   snapshot taken after each burst, so rows are patched on top of already
   patched snapshots — the patched snapshot is structurally identical to
   the reference full rebuild, every time. *)
let prop_patch_matches_rebuild =
  QCheck.Test.make ~name:"dynamic: patched snapshot = full rebuild"
    ~count:1000
    (QCheck.make
       ~print:(fun (n, p, seed) ->
         Printf.sprintf "n=%d p=%.2f seed=%d" n p seed)
       QCheck.Gen.(
         triple (int_range 1 40) (float_range 0.0 0.3) (int_range 0 99_999)))
    (fun (n, p, seed) ->
      let rng = Rng.create ~seed in
      let graph = Builders.gnp rng ~n ~p in
      let dyn = Dynamic.create graph in
      let edges = Array.of_list (Graph.edges graph) in
      let random_edge () = edges.(Rng.int rng (Array.length edges)) in
      let ok = ref true in
      let bursts = 1 + Rng.int rng 4 in
      for _ = 1 to bursts do
        let events = 1 + Rng.int rng 6 in
        for _ = 1 to events do
          let v = Rng.int rng n in
          match Rng.int rng (if Array.length edges = 0 then 4 else 6) with
          | 0 -> ignore (Dynamic.crash dyn v)
          | 1 -> ignore (Dynamic.join dyn v)
          | 2 -> ignore (Dynamic.sleep dyn v)
          | 3 -> ignore (Dynamic.wake dyn v)
          | 4 ->
              let a, b = random_edge () in
              ignore (Dynamic.link_down dyn a b)
          | _ ->
              let a, b = random_edge () in
              ignore (Dynamic.link_up dyn a b)
        done;
        let snap = Dynamic.snapshot dyn in
        let reference = Dynamic.materialize dyn in
        ok :=
          !ok
          && Graph.equal snap reference
          && Graph.is_symmetric snap
          && (not (Dynamic.pristine dyn) || snap == Dynamic.base dyn)
      done;
      !ok)

let qcheck_cases = List.map QCheck_alcotest.to_alcotest [ prop_patch_matches_rebuild ]

(* ------------------------------------------------------------------ Churn *)

let test_schedule_events_at () =
  let plan =
    Churn.schedule [ (2, [ Churn.Crash 0 ]); (5, [ Churn.Join 0; Churn.Crash 1 ]) ]
  in
  let dyn = Dynamic.create (Builders.path 3) in
  let r = rng () in
  Alcotest.(check int) "silent round" 0
    (List.length (Churn.events_at plan ~round:1 dyn r));
  Alcotest.(check int) "round 2 fires" 1
    (List.length (Churn.events_at plan ~round:2 dyn r));
  Alcotest.(check int) "round 5 fires both" 2
    (List.length (Churn.events_at plan ~round:5 dyn r));
  Alcotest.check_raises "round 0 rejected"
    (Invalid_argument "Churn.schedule: rounds start at 1") (fun () ->
      ignore (Churn.schedule [ (0, []) ]))

let test_horizon () =
  let check_opt = Alcotest.(check (option int)) in
  check_opt "schedule horizon" (Some 7)
    (Churn.horizon (Churn.schedule [ (3, []); (7, []); (2, []) ]));
  check_opt "canned burst horizon" (Some 40)
    (Churn.horizon (Churn.crash_fraction ~round:40 ~fraction:0.5));
  check_opt "window horizon" (Some 50)
    (Churn.horizon (Churn.link_flap ~first:40 ~last:50 ~p_down:0.1 ()));
  check_opt "compose takes the max" (Some 50)
    (Churn.horizon
       (Churn.compose
          [
            Churn.crash_fraction ~round:40 ~fraction:0.5;
            Churn.link_flap ~first:10 ~last:50 ~p_down:0.1 ();
          ]));
  check_opt "unbounded generator" None
    (Churn.horizon (Churn.generator (fun ~round:_ _ _ -> [])))

let test_crash_fraction_targets_alive () =
  let dyn = Dynamic.create (Builders.complete 10) in
  ignore (Dynamic.crash dyn 0);
  ignore (Dynamic.crash dyn 1);
  let plan = Churn.crash_fraction ~round:3 ~fraction:0.5 in
  let events = Churn.events_at plan ~round:3 dyn (rng ()) in
  (* ceil (0.5 * 8 alive) = 4 distinct alive victims. *)
  Alcotest.(check int) "victim count" 4 (List.length events);
  let victims =
    List.map (function Churn.Crash p -> p | _ -> Alcotest.fail "not a crash")
      events
  in
  Alcotest.(check bool) "victims distinct" true
    (List.length (List.sort_uniq compare victims) = List.length victims);
  List.iter
    (fun p ->
      Alcotest.(check bool) "victim was alive" true (Dynamic.is_alive dyn p))
    victims

let test_join_all_and_links_up_all () =
  let dyn = Dynamic.create (Builders.complete 4) in
  ignore (Dynamic.crash dyn 1);
  ignore (Dynamic.crash dyn 3);
  ignore (Dynamic.link_down dyn 0 2);
  let joins = Churn.events_at (Churn.join_all ~round:9) ~round:9 dyn (rng ()) in
  Alcotest.(check int) "one join per crashed node" 2 (List.length joins);
  let ups =
    Churn.events_at (Churn.links_up_all ~round:9) ~round:9 dyn (rng ())
  in
  Alcotest.(check (list (pair int int))) "one up per downed link" [ (0, 2) ]
    (List.map
       (function Churn.Link_up (p, q) -> (p, q) | _ -> Alcotest.fail "not up")
       ups)

let test_windowed_plans_respect_window () =
  let dyn = Dynamic.create (Builders.complete 6) in
  let r = rng () in
  let plan = Churn.bernoulli_crash ~first:5 ~last:8 ~p_crash:1.0 () in
  Alcotest.(check int) "before window" 0
    (List.length (Churn.events_at plan ~round:4 dyn r));
  Alcotest.(check int) "inside window" 6
    (List.length (Churn.events_at plan ~round:5 dyn r));
  Alcotest.(check int) "after window" 0
    (List.length (Churn.events_at plan ~round:9 dyn r))

(* --------------------------------------------------- Engine under churn *)

(* Same toy protocol as suite_engine: flood the maximum value seen. *)
module Floodmax = struct
  type state = int

  type message = int

  let init _rng graph p = Graph.node_count graph - p

  let emit _graph _p st = st

  let handle _rng _graph _p st msgs =
    List.fold_left (fun acc (_, v) -> max acc v) st msgs

  let equal_state = Int.equal
end

module E = Engine.Make (Floodmax)

let test_crash_silences_node () =
  (* Node 0 holds the max (10); crashing it before its first broadcast
     leaves the survivors flooding 9. *)
  let g = Builders.path 10 in
  let churn = Churn.schedule [ (1, [ Churn.Crash 0 ]) ] in
  let result = E.run ~churn (rng ()) g in
  Alcotest.(check bool) "converged" true result.E.converged;
  Alcotest.(check bool) "node 0 dead" false result.E.alive.(0);
  Alcotest.(check int) "frozen state" 10 result.E.states.(0);
  for p = 1 to 9 do
    Alcotest.(check int) "survivors carry 9" 9 result.E.states.(p)
  done;
  Alcotest.(check int) "snapshot isolates the dead node" 0
    (Graph.degree result.E.graph 0)

let test_join_reinitializes () =
  (* Crash the max-holder, then rejoin it: Join re-runs P.init, so the 10
     re-enters the network and floods everywhere. *)
  let g = Builders.path 10 in
  let churn =
    Churn.schedule [ (1, [ Churn.Crash 0 ]); (15, [ Churn.Join 0 ]) ]
  in
  let result = E.run ~churn ~quiet_rounds:2 (rng ()) g in
  Alcotest.(check bool) "converged" true result.E.converged;
  Alcotest.(check bool) "node 0 back" true result.E.alive.(0);
  Array.iter
    (fun st -> Alcotest.(check int) "max restored everywhere" 10 st)
    result.E.states;
  Alcotest.(check bool) "full topology restored" true
    (Graph.edge_count result.E.graph = 9)

let test_sleep_retains_state () =
  (* Sleeping node 0 keeps its 10 and spreads it after waking. *)
  let g = Builders.path 6 in
  let churn =
    Churn.schedule [ (1, [ Churn.Sleep 0 ]); (12, [ Churn.Wake 0 ]) ]
  in
  let result = E.run ~churn ~quiet_rounds:2 (rng ()) g in
  Alcotest.(check bool) "converged" true result.E.converged;
  Array.iter
    (fun st -> Alcotest.(check int) "retained max everywhere" 6 st)
    result.E.states

let test_horizon_keeps_run_alive () =
  (* Floodmax on a short path converges in a handful of rounds; a crash
     scheduled at round 30 must still fire even with quiet_rounds = 1. *)
  let g = Builders.path 5 in
  let churn = Churn.schedule [ (30, [ Churn.Crash 4 ]) ] in
  let result = E.run ~churn (rng ()) g in
  Alcotest.(check bool) "ran past the scheduled event" true
    (result.E.rounds >= 30);
  Alcotest.(check bool) "event applied" false result.E.alive.(4);
  match result.E.bursts with
  | [ b ] ->
      Alcotest.(check int) "burst at the scheduled round" 30
        b.Engine.burst_start;
      Alcotest.(check int) "one event" 1 b.Engine.burst_events;
      Alcotest.(check bool) "recovery measured" true
        (b.Engine.recovery_rounds <> None)
  | bs -> Alcotest.failf "expected one burst, got %d" (List.length bs)

let test_noop_events_not_counted () =
  let g = Builders.path 4 in
  let churn =
    Churn.schedule
      [ (2, [ Churn.Crash 0; Churn.Crash 0; Churn.Wake 1; Churn.Link_up (1, 2) ]) ]
  in
  let counter = Counter.create () in
  let result =
    E.run ~churn
      ~on_event:(fun ~round:_ ev -> Counter.incr counter (Churn.event_label ev))
      (rng ()) g
  in
  Alcotest.(check int) "only the first crash applied" 1 (Counter.total counter);
  Alcotest.(check int) "crash counted" 1 (Counter.count counter "crash");
  match result.E.bursts with
  | [ b ] -> Alcotest.(check int) "burst counts applied events" 1 b.Engine.burst_events
  | _ -> Alcotest.fail "expected one burst"

let test_adjacent_event_rounds_merge_into_one_burst () =
  let g = Builders.complete 8 in
  let churn =
    Churn.schedule
      [
        (3, [ Churn.Crash 0 ]); (4, [ Churn.Crash 1 ]); (5, [ Churn.Crash 2 ]);
        (20, [ Churn.Join 0 ]);
      ]
  in
  let result = E.run ~churn ~quiet_rounds:2 (rng ()) g in
  match result.E.bursts with
  | [ storm; rejoin ] ->
      Alcotest.(check int) "storm starts at 3" 3 storm.Engine.burst_start;
      Alcotest.(check int) "storm ends at 5" 5 storm.Engine.burst_end;
      Alcotest.(check int) "storm pooled events" 3 storm.Engine.burst_events;
      Alcotest.(check int) "rejoin burst" 20 rejoin.Engine.burst_start;
      List.iter
        (fun b ->
          Alcotest.(check bool) "finite recovery" true
            (b.Engine.recovery_rounds <> None))
        result.E.bursts
  | bs -> Alcotest.failf "expected two bursts, got %d" (List.length bs)

let test_corrupt_without_function_raises () =
  let g = Builders.path 3 in
  let churn = Churn.schedule [ (2, [ Churn.Corrupt 0 ]) ] in
  Alcotest.check_raises "missing ~corrupt"
    (Invalid_argument "Engine.run: churn plan emits Corrupt but no ~corrupt given")
    (fun () -> ignore (E.run ~churn (rng ()) g))

let test_probe_sees_liveness () =
  let g = Builders.path 5 in
  let churn = Churn.schedule [ (3, [ Churn.Crash 2 ]) ] in
  let dead_seen = ref 0 in
  let _ =
    E.run ~churn
      ~probe:(fun ~round:_ ~graph:_ ~alive _states ->
        if not alive.(2) then incr dead_seen)
      (rng ()) g
  in
  Alcotest.(check bool) "probe observed the crash" true (!dead_seen > 0)

let test_fault_to_churn () =
  (* A corruption-only fault plan, replayed through the churn DSL: zeroing
     two nodes after convergence forces a re-flood back to the fixpoint. *)
  let g = Builders.path 6 in
  let plan = Fault.at_round ~round:12 ~count:2 ~corrupt:(fun _ _ _ -> 0) in
  let churn, corrupt = Fault.to_churn plan in
  let counter = Counter.create () in
  let result =
    E.run ~churn ~corrupt ~quiet_rounds:2
      ~on_event:(fun ~round:_ ev -> Counter.incr counter (Churn.event_label ev))
      (rng ()) g
  in
  Alcotest.(check bool) "converged" true result.E.converged;
  Alcotest.(check int) "two corruptions applied" 2
    (Counter.count counter "corrupt");
  Array.iter
    (fun st -> Alcotest.(check int) "healed" 6 st)
    result.E.states

(* ------------------------------------- Distributed protocol under churn *)

module PD = Distributed.Make (struct
  let params = Distributed.default_params
end)

module ED = Engine.Make (PD)

let quiet = Distributed.default_params.Distributed.cache_ttl + 2

let oracle_of graph =
  Algorithm.cluster (Rng.create ~seed:1) Config.basic graph
    ~ids:(Array.init (Graph.node_count graph) Fun.id)

let test_crash_quarter_recovers_legitimate () =
  (* The acceptance scenario: >= 20% of the nodes crash mid-run and stay
     dead; the survivors re-elect in place and the final configuration is
     legitimate on the surviving topology, under both schedulers. *)
  List.iter
    (fun scheduler ->
      let rng = Rng.create ~seed:31 in
      let graph = Builders.gnp rng ~n:50 ~p:0.1 in
      let churn = Churn.crash_fraction ~round:30 ~fraction:0.25 in
      let result =
        ED.run ~scheduler ~churn ~quiet_rounds:quiet ~max_rounds:3000 rng graph
      in
      Alcotest.(check bool) "reconverged in place" true result.ED.converged;
      let dead =
        Array.fold_left
          (fun acc a -> if a then acc else acc + 1)
          0 result.ED.alive
      in
      Alcotest.(check bool) ">= 20% crashed" true (dead >= 10);
      let assignment =
        Distributed.to_assignment ~alive:result.ED.alive result.ED.states
      in
      let ids = Array.init (Graph.node_count graph) Fun.id in
      Alcotest.(check bool) "legitimate on the surviving topology" true
        (Legitimacy.is_legitimate Config.basic result.ED.graph ~ids assignment);
      Alcotest.(check int) "no ghost references remain" 0
        (Distributed.ghost_references ~alive:result.ED.alive result.ED.states))
    [ Scheduler.Synchronous; Scheduler.Random_order ]

let test_crash_join_cycle_restores_configuration () =
  (* Crash a third of the network, then rejoin everyone: the run must come
     back to the unique pre-crash legitimate configuration without a
     restart. *)
  let rng = Rng.create ~seed:8 in
  let graph = Builders.gnp rng ~n:50 ~p:0.1 in
  let churn =
    Churn.compose
      [ Churn.crash_fraction ~round:30 ~fraction:0.3; Churn.join_all ~round:60 ]
  in
  let result = ED.run ~churn ~quiet_rounds:quiet ~max_rounds:3000 rng graph in
  Alcotest.(check bool) "converged" true result.ED.converged;
  Alcotest.(check bool) "everyone back" true
    (Array.for_all Fun.id result.ED.alive);
  let after = Distributed.to_assignment result.ED.states in
  Alcotest.(check bool) "same fixpoint as the oracle" true
    (Assignment.equal after (oracle_of graph));
  let ids = Array.init (Graph.node_count graph) Fun.id in
  Alcotest.(check bool) "legitimate" true
    (Legitimacy.is_legitimate Config.basic result.ED.graph ~ids after)

let test_link_flap_storm_recovers () =
  let rng = Rng.create ~seed:19 in
  let graph = Builders.gnp rng ~n:40 ~p:0.12 in
  let churn =
    Churn.compose
      [
        Churn.link_flap ~first:25 ~last:32 ~p_down:0.08 ~p_up:0.3 ();
        Churn.links_up_all ~round:45;
      ]
  in
  let result = ED.run ~churn ~quiet_rounds:quiet ~max_rounds:3000 rng graph in
  Alcotest.(check bool) "converged" true result.ED.converged;
  Alcotest.(check bool) "all links restored" true
    (Graph.edge_count result.ED.graph = Graph.edge_count graph);
  let after = Distributed.to_assignment result.ED.states in
  Alcotest.(check bool) "oracle fixpoint after the storm" true
    (Assignment.equal after (oracle_of graph))

let test_ghosts_spike_then_drain () =
  (* Right after a crash burst the survivors still cache the dead and may
     head-reference them; within the cache TTL the ghosts must drain to
     zero. *)
  let rng = Rng.create ~seed:23 in
  let graph = Builders.gnp rng ~n:50 ~p:0.1 in
  let churn = Churn.crash_fraction ~round:30 ~fraction:0.3 in
  let peak = ref 0 in
  let result =
    ED.run ~churn ~quiet_rounds:quiet ~max_rounds:3000
      ~probe:(fun ~round:_ ~graph:_ ~alive states ->
        peak := max !peak (Distributed.ghost_references ~alive states))
      rng graph
  in
  Alcotest.(check bool) "converged" true result.ED.converged;
  Alcotest.(check bool) "ghosts appeared after the burst" true (!peak > 0);
  Alcotest.(check int) "ghosts drained by the end" 0
    (Distributed.ghost_references ~alive:result.ED.alive result.ED.states)

(* A lossy-channel instance: cache entries must outlive slotted-channel
   frame loss, so the TTL is raised well above the default. *)
module PD_lossy = Distributed.Make (struct
  let params = { Distributed.default_params with Distributed.cache_ttl = 8 }
end)

module EL = Engine.Make (PD_lossy)

let test_combined_adversity_recovers () =
  (* Every adversity class at once: transient state corruption lifted
     through [Fault.to_churn], a contended slotted channel, and a
     crash-then-rejoin storm — one run, one plan. Self-stabilization
     demands the network still settle into a safe configuration: the final
     assignment is legitimate and no ghost references survive. *)
  let rng = Rng.create ~seed:47 in
  let graph = Builders.gnp rng ~n:40 ~p:0.12 in
  let fault_churn, corrupt =
    Fault.to_churn
      (Fault.at_round ~round:40 ~count:10 ~corrupt:Distributed.corrupt)
  in
  let churn =
    Churn.compose
      [
        Churn.crash_fraction ~round:25 ~fraction:0.2;
        fault_churn;
        Churn.join_all ~round:70;
      ]
  in
  let result =
    EL.run
      ~channel:(Ss_radio.Channel.slotted ~slots:24)
      ~churn ~corrupt ~quiet_rounds:10 ~max_rounds:5000 rng graph
  in
  Alcotest.(check bool) "converged under combined adversity" true
    result.EL.converged;
  Alcotest.(check bool) "everyone rejoined" true
    (Array.for_all Fun.id result.EL.alive);
  let after = Distributed.to_assignment result.EL.states in
  let ids = Array.init (Graph.node_count graph) Fun.id in
  Alcotest.(check bool) "legitimate after combined adversity" true
    (Legitimacy.is_legitimate Config.basic result.EL.graph ~ids after);
  Alcotest.(check int) "no ghost references" 0
    (Distributed.ghost_references ~alive:result.EL.alive result.EL.states)

(* -------------------------------------------------------------- Exp_churn *)

let test_exp_churn_small () =
  (* Acceptance: finite recovery for every burst, legitimate and converged,
     under both schedulers. Miniature deployment to stay quick. *)
  let rows =
    Ss_experiments.Exp_churn.run ~seed:5 ~runs:1
      ~spec:(Ss_experiments.Scenario.uniform ~count:40 ~radius:0.2 ())
      ~storms:
        [ Ss_experiments.Exp_churn.Crash_recover;
          Ss_experiments.Exp_churn.Combined ]
      ()
  in
  Alcotest.(check int) "2 schedulers x 2 storms" 4 (List.length rows);
  List.iter
    (fun r ->
      let open Ss_experiments.Exp_churn in
      Alcotest.(check bool) "bursts observed" true (r.bursts > 0);
      Alcotest.(check int) "every burst recovered finitely" r.bursts r.recovered;
      Alcotest.(check int) "legitimate" r.runs r.legitimate;
      Alcotest.(check int) "converged" r.runs r.converged)
    rows

let suite =
  [
    Alcotest.test_case "dynamic: crash isolates" `Quick test_dynamic_crash_isolates;
    Alcotest.test_case "dynamic: status transitions" `Quick
      test_dynamic_transitions;
    Alcotest.test_case "dynamic: link toggling" `Quick test_dynamic_link_toggle;
    Alcotest.test_case "dynamic: snapshot caching" `Quick
      test_dynamic_snapshot_cached;
    Alcotest.test_case "dynamic: snapshot carries positions" `Quick
      test_dynamic_snapshot_positions_carried;
    Alcotest.test_case "dynamic: back to pristine restores base" `Quick
      test_dynamic_back_to_pristine_restores_base;
    Alcotest.test_case "churn: schedule emits at rounds" `Quick
      test_schedule_events_at;
    Alcotest.test_case "churn: horizons" `Quick test_horizon;
    Alcotest.test_case "churn: crash_fraction targets alive nodes" `Quick
      test_crash_fraction_targets_alive;
    Alcotest.test_case "churn: join_all / links_up_all" `Quick
      test_join_all_and_links_up_all;
    Alcotest.test_case "churn: windows respected" `Quick
      test_windowed_plans_respect_window;
    Alcotest.test_case "engine: crash silences a node" `Quick
      test_crash_silences_node;
    Alcotest.test_case "engine: join reinitializes" `Quick
      test_join_reinitializes;
    Alcotest.test_case "engine: sleep retains state" `Quick
      test_sleep_retains_state;
    Alcotest.test_case "engine: horizon keeps run alive" `Quick
      test_horizon_keeps_run_alive;
    Alcotest.test_case "engine: no-op events not counted" `Quick
      test_noop_events_not_counted;
    Alcotest.test_case "engine: adjacent event rounds merge" `Quick
      test_adjacent_event_rounds_merge_into_one_burst;
    Alcotest.test_case "engine: Corrupt needs ~corrupt" `Quick
      test_corrupt_without_function_raises;
    Alcotest.test_case "engine: probe sees liveness" `Quick
      test_probe_sees_liveness;
    Alcotest.test_case "fault plans lift into churn" `Quick test_fault_to_churn;
    Alcotest.test_case "distributed: 25% crash recovers legitimately" `Quick
      test_crash_quarter_recovers_legitimate;
    Alcotest.test_case "distributed: crash+join restores the configuration"
      `Quick test_crash_join_cycle_restores_configuration;
    Alcotest.test_case "distributed: link flap storm recovers" `Quick
      test_link_flap_storm_recovers;
    Alcotest.test_case "distributed: ghosts spike then drain" `Quick
      test_ghosts_spike_then_drain;
    Alcotest.test_case "distributed: combined adversity recovers" `Quick
      test_combined_adversity_recovers;
    Alcotest.test_case "exp_churn: finite recovery everywhere" `Slow
      test_exp_churn_small;
  ]
  @ qcheck_cases
