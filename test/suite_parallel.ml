(* The determinism contract of the domain-parallel runner: every registered
   experiment driver must produce results at ~domains:4 that are
   structurally identical — exact float equality, not tolerance — to the
   sequential ~domains:1 run, and the Pool itself must preserve index
   order, propagate exceptions and survive reuse. Scales are miniature;
   the point is bit-equality, not statistics. *)

module E = Ss_experiments
module Scenario = E.Scenario
module Pool = Ss_stats.Pool
module Counter = Ss_stats.Counter
module Rng = Ss_prng.Rng

(* Polymorphic [compare] rather than [=]: summaries of empty run sets hold
   nan means, and nan = nan must count as equal here. *)
let check_identical name a b =
  Alcotest.(check bool) name true (compare a b = 0)

(* ------------------------------------------------------------------ Pool *)

let test_pool_index_order () =
  let a = Pool.map_n ~domains:4 100 (fun i -> i * i) in
  Alcotest.(check bool) "squares in order" true
    (a = Array.init 100 (fun i -> i * i))

let test_pool_domains_exceed_items () =
  let a = Pool.map_n ~domains:8 3 (fun i -> i + 1) in
  Alcotest.(check bool) "3 items on 8 domains" true (a = [| 1; 2; 3 |])

let test_pool_sequential_matches_parallel () =
  let f i = float_of_int i ** 1.5 in
  let seq = Pool.map_n ~domains:1 64 f in
  let par = Pool.map_n ~domains:4 64 f in
  check_identical "map_n 1 = map_n 4" seq par

let test_pool_reuse () =
  Pool.with_pool ~domains:3 (fun pool ->
      Alcotest.(check int) "three domains" 3 (Pool.domains pool);
      let a = Pool.map pool 10 (fun i -> i) in
      let b = Pool.map pool 7 (fun i -> 10 * i) in
      Alcotest.(check bool) "first map" true (a = Array.init 10 Fun.id);
      Alcotest.(check bool) "second map" true
        (b = Array.init 7 (fun i -> 10 * i)))

let test_pool_exception_lowest_index () =
  let raised =
    try
      ignore
        (Pool.map_n ~domains:4 32 (fun i ->
             if i >= 5 then failwith (string_of_int i) else i));
      None
    with Failure msg -> Some msg
  in
  Alcotest.(check (option string)) "lowest failing index wins" (Some "5") raised

let test_pool_raising_task_contained () =
  (* A raising task must not deadlock the pool, orphan a worker, or
     suppress the other items: everything else still executes, the
     lowest-index exception is re-raised, and the pool remains usable —
     identically on the sequential (1-domain) and parallel (4-domain)
     paths. *)
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun pool ->
          let executed = Array.make 32 false in
          let raised =
            try
              ignore
                (Pool.map pool 32 (fun i ->
                     executed.(i) <- true;
                     if i = 7 || i = 20 then failwith (string_of_int i);
                     i));
              None
            with Failure msg -> Some msg
          in
          Alcotest.(check (option string))
            (Printf.sprintf "domains %d: lowest index re-raised" domains)
            (Some "7") raised;
          Alcotest.(check bool)
            (Printf.sprintf "domains %d: every item still executed" domains)
            true
            (Array.for_all Fun.id executed);
          (* No orphaned worker / wedged state: the same pool still maps. *)
          let again = Pool.map pool 5 (fun i -> i * 3) in
          Alcotest.(check bool)
            (Printf.sprintf "domains %d: pool usable after the failure"
               domains)
            true
            (again = [| 0; 3; 6; 9; 12 |])))
    [ 1; 4 ]

let test_pool_invalid_domains () =
  Alcotest.check_raises "domains 0"
    (Invalid_argument "Pool.create: need at least one domain") (fun () ->
      ignore (Pool.create ~domains:0))

let test_pool_shutdown_idempotent () =
  let pool = Pool.create ~domains:2 in
  ignore (Pool.map pool 4 Fun.id);
  Pool.shutdown pool;
  Pool.shutdown pool;
  Alcotest.check_raises "map after shutdown"
    (Invalid_argument "Pool.map: pool is shut down") (fun () ->
      ignore (Pool.map pool 4 Fun.id))

(* ---------------------------------------------------------------- Runner *)

let test_replicate_preserves_run_order () =
  let runs = 23 in
  let order = E.Runner.replicate ~domains:4 ~seed:1 ~runs (fun ~run _ -> run) in
  Alcotest.(check (list int)) "run order" (List.init runs Fun.id) order

let test_replicate_domain_invariant () =
  let f ~run:_ rng = List.init 8 (fun _ -> Rng.unit rng) in
  let seq = E.Runner.replicate ~domains:1 ~seed:77 ~runs:12 f in
  List.iter
    (fun domains ->
      let par = E.Runner.replicate ~domains ~seed:77 ~runs:12 f in
      check_identical (Printf.sprintf "domains %d" domains) seq par)
    [ 2; 3; 4; 7 ]

let test_run_stream_independent_of_total () =
  (* Run i must see the same sub-stream whether it is one of 4 or of 9. *)
  let f ~run:_ rng = List.init 4 (fun _ -> Rng.unit rng) in
  let small = E.Runner.replicate ~seed:13 ~runs:4 f in
  let large = E.Runner.replicate ~domains:3 ~seed:13 ~runs:9 f in
  check_identical "first four runs agree" small
    (List.filteri (fun i _ -> i < 4) large)

let test_streams_prefix_stability () =
  let draw rngs = Array.map (fun r -> List.init 6 (fun _ -> Rng.unit r)) rngs in
  let small = draw (E.Runner.streams ~seed:99 ~runs:5) in
  let large = draw (E.Runner.streams ~seed:99 ~runs:40) in
  check_identical "prefix of streams" small (Array.sub large 0 5)

let test_summarize_domain_invariant () =
  let f rng = Rng.unit rng +. Rng.unit rng in
  let seq = E.Runner.summarize ~domains:1 ~seed:3 ~runs:17 f in
  let par = E.Runner.summarize ~domains:4 ~seed:3 ~runs:17 f in
  check_identical "summaries identical" seq par

let test_summarize_fields_domain_invariant () =
  let fields = [ "x"; "y" ] in
  let f rng =
    let x = Rng.unit rng in
    if x < 0.5 then [ ("x", x) ] else [ ("x", x); ("y", x *. x) ]
  in
  let seq = E.Runner.summarize_fields ~domains:1 ~seed:8 ~runs:19 fields f in
  let par = E.Runner.summarize_fields ~domains:4 ~seed:8 ~runs:19 fields f in
  check_identical "field summaries identical" seq par

(* ----------------------------------------------- Experiment drivers, 1 = 4 *)

let small_spec = Scenario.poisson ~intensity:80.0 ~radius:0.15 ()

let both f =
  let seq = f ~domains:1 in
  let par = f ~domains:4 in
  (seq, par)

let test_schedule_identical () =
  let seq, par =
    both (fun ~domains -> E.Exp_schedule.run ~seed:3 ~runs:3 ~domains ~spec:small_spec ())
  in
  check_identical "schedule milestones" seq par

let test_dag_steps_identical () =
  let seq, par =
    both (fun ~domains ->
        E.Exp_dag_steps.run ~seed:3 ~runs:3 ~domains ~intensity:150.0
          ~radii:[ 0.09; 0.1 ] ())
  in
  check_identical "dag-steps rows" seq par

let test_features_identical () =
  let seq, par =
    both (fun ~domains ->
        E.Exp_features.run_grid ~seed:3 ~runs:2 ~domains ~radii:[ 0.13 ] ())
  in
  check_identical "grid feature rows" seq par

let test_mobility_identical () =
  let params =
    {
      E.Exp_mobility.default_params with
      E.Exp_mobility.count = 80;
      horizon = 20.0;
      runs = 2;
    }
  in
  let seq, par =
    both (fun ~domains -> E.Exp_mobility.run ~params ~domains ())
  in
  check_identical "mobility results" seq par

let test_selfstab_identical () =
  let seq, par =
    both (fun ~domains ->
        E.Exp_selfstab.measure_recovery ~seed:3 ~runs:3 ~domains
          ~spec:small_spec ~fractions:[ 0.3; 1.0 ] ())
  in
  check_identical "recovery rows" seq par;
  let seq, par =
    both (fun ~domains ->
        E.Exp_selfstab.measure_loss ~seed:3 ~runs:3 ~domains ~spec:small_spec
          ~taus:[ 0.0; 0.2 ] ())
  in
  check_identical "loss rows" seq par

let test_compare_identical () =
  let seq, par =
    both (fun ~domains ->
        E.Exp_compare.run ~seed:3 ~runs:2 ~domains ~count:80 ~epochs:6
          ~algorithms:
            [
              E.Exp_compare.Heuristic Ss_cluster.Metric.Density;
              E.Exp_compare.Maxmin_d 2;
            ]
          ())
  in
  check_identical "comparison rows" seq par

let test_energy_identical () =
  let seq, par =
    both (fun ~domains ->
        E.Exp_energy.run ~seed:3 ~runs:2 ~domains
          ~spec:(Scenario.poisson ~intensity:100.0 ~radius:0.14 ())
          ())
  in
  check_identical "energy rows" seq par

let test_hierarchy_identical () =
  let seq, par =
    both (fun ~domains ->
        E.Exp_hierarchy.run ~seed:3 ~runs:2 ~domains ~radius:0.12
          ~intensities:[ 120.0 ] ())
  in
  check_identical "hierarchy rows" seq par

let test_bounds_identical () =
  let seq, par =
    both (fun ~domains ->
        E.Exp_mobility_bounds.run ~seed:3 ~runs:2 ~domains ~count:60 ~epochs:4
          ~speeds:[ 1.0; 10.0 ] ())
  in
  check_identical "mobility-bounds rows" seq par

let test_link_failure_identical () =
  let seq, par =
    both (fun ~domains ->
        E.Exp_link_failure.run ~seed:3 ~runs:2 ~domains
          ~spec:(Scenario.poisson ~intensity:100.0 ~radius:0.13 ())
          ~epochs:4 ~rates:[ 0.0; 0.2 ] ())
  in
  check_identical "link-failure rows" seq par

(* Counter.t is hashtable-backed, so compare rows through their sorted
   event listings rather than the raw representation. *)
let churn_projection rows =
  List.map
    (fun (r : E.Exp_churn.row) ->
      ( r.E.Exp_churn.scheduler,
        E.Exp_churn.storm_label r.E.Exp_churn.storm,
        r.E.Exp_churn.runs,
        r.E.Exp_churn.bursts,
        r.E.Exp_churn.recovered,
        r.E.Exp_churn.recovery,
        r.E.Exp_churn.peak_ghosts,
        Counter.to_list r.E.Exp_churn.events,
        r.E.Exp_churn.legitimate,
        r.E.Exp_churn.converged ))
    rows

let campaign_projection rows =
  List.map
    (fun (r : E.Exp_campaign.row) ->
      ( E.Exp_campaign.cell_label r.E.Exp_campaign.cell,
        r.E.Exp_campaign.runs,
        r.E.Exp_campaign.converged,
        r.E.Exp_campaign.oscillating,
        r.E.Exp_campaign.still_changing,
        r.E.Exp_campaign.failed,
        r.E.Exp_campaign.dwell,
        r.E.Exp_campaign.max_dwell,
        r.E.Exp_campaign.unrecovered,
        r.E.Exp_campaign.post_violations,
        r.E.Exp_campaign.peak_ghosts,
        r.E.Exp_campaign.bad ))
    rows

let test_campaign_identical () =
  let seq, par =
    both (fun ~domains ->
        campaign_projection
          (E.Exp_campaign.run ~seed:3 ~runs:2 ~domains
             ~spec:(Scenario.uniform ~count:35 ~radius:0.2 ())
             ~grid:E.Exp_campaign.smoke_grid ~max_rounds:900 ()))
  in
  check_identical "campaign rows" seq par

let test_churn_identical () =
  let seq, par =
    both (fun ~domains ->
        churn_projection
          (E.Exp_churn.run ~seed:3 ~runs:2 ~domains
             ~spec:(Scenario.poisson ~intensity:90.0 ~radius:0.14 ())
             ~schedulers:[ Ss_engine.Scheduler.Synchronous ]
             ~storms:[ E.Exp_churn.Crash_recover; E.Exp_churn.Sleep_wake ]
             ()))
  in
  check_identical "churn rows" seq par

let suite =
  [
    Alcotest.test_case "pool keeps index order" `Quick test_pool_index_order;
    Alcotest.test_case "pool with more domains than items" `Quick
      test_pool_domains_exceed_items;
    Alcotest.test_case "pool sequential = parallel" `Quick
      test_pool_sequential_matches_parallel;
    Alcotest.test_case "pool survives reuse" `Quick test_pool_reuse;
    Alcotest.test_case "pool re-raises lowest failing index" `Quick
      test_pool_exception_lowest_index;
    Alcotest.test_case "pool contains raising tasks (1 and 4 domains)" `Quick
      test_pool_raising_task_contained;
    Alcotest.test_case "pool rejects zero domains" `Quick
      test_pool_invalid_domains;
    Alcotest.test_case "pool shutdown is idempotent" `Quick
      test_pool_shutdown_idempotent;
    Alcotest.test_case "replicate keeps run order" `Quick
      test_replicate_preserves_run_order;
    Alcotest.test_case "replicate invariant in domain count" `Quick
      test_replicate_domain_invariant;
    Alcotest.test_case "run stream independent of runs total" `Quick
      test_run_stream_independent_of_total;
    Alcotest.test_case "streams prefix-stable" `Quick
      test_streams_prefix_stability;
    Alcotest.test_case "summarize invariant in domain count" `Quick
      test_summarize_domain_invariant;
    Alcotest.test_case "summarize_fields invariant in domain count" `Quick
      test_summarize_fields_domain_invariant;
    Alcotest.test_case "T2 schedule 1 = 4 domains" `Slow test_schedule_identical;
    Alcotest.test_case "T3 dag-steps 1 = 4 domains" `Slow
      test_dag_steps_identical;
    Alcotest.test_case "T5 features 1 = 4 domains" `Slow test_features_identical;
    Alcotest.test_case "mobility 1 = 4 domains" `Slow test_mobility_identical;
    Alcotest.test_case "selfstab 1 = 4 domains" `Slow test_selfstab_identical;
    Alcotest.test_case "compare 1 = 4 domains" `Slow test_compare_identical;
    Alcotest.test_case "energy 1 = 4 domains" `Slow test_energy_identical;
    Alcotest.test_case "hierarchy 1 = 4 domains" `Slow test_hierarchy_identical;
    Alcotest.test_case "mobility-bounds 1 = 4 domains" `Slow
      test_bounds_identical;
    Alcotest.test_case "link-failure 1 = 4 domains" `Slow
      test_link_failure_identical;
    Alcotest.test_case "churn 1 = 4 domains" `Slow test_churn_identical;
    Alcotest.test_case "campaign 1 = 4 domains" `Slow test_campaign_identical;
  ]
