module Graph = Ss_topology.Graph
module Builders = Ss_topology.Builders
module Channel = Ss_radio.Channel
module Engine = Ss_engine.Engine
module Cluster = Ss_cluster
module Config = Ss_cluster.Config
module Algorithm = Ss_cluster.Algorithm
module Assignment = Ss_cluster.Assignment
module Distributed = Ss_cluster.Distributed
module Rng = Ss_prng.Rng

module P_basic = Distributed.Make (struct
  let params = Distributed.default_params
end)

module E_basic = Engine.Make (P_basic)

module P_improved = Distributed.Make (struct
  let params =
    { Distributed.default_params with Distributed.algo = Config.improved }
end)

module E_improved = Engine.Make (P_improved)

module P_dag = Distributed.Make (struct
  let params =
    { Distributed.default_params with Distributed.algo = Config.with_dag }
end)

module E_dag = Engine.Make (P_dag)

let quiet = Distributed.default_params.Distributed.cache_ttl + 2

let random_graph ?(n = 60) ?(p = 0.08) seed =
  let rng = Rng.create ~seed in
  (Builders.gnp rng ~n ~p, rng)

let test_matches_oracle_on_perfect_channel () =
  for seed = 0 to 9 do
    let graph, rng = random_graph seed in
    let result = E_basic.run ~quiet_rounds:quiet rng graph in
    Alcotest.(check bool) "converged" true result.E_basic.converged;
    let distributed = Distributed.to_assignment result.E_basic.states in
    let n = Graph.node_count graph in
    let oracle =
      Algorithm.cluster (Rng.create ~seed:999) Config.basic graph
        ~ids:(Array.init n Fun.id)
    in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d matches oracle" seed)
      true
      (Assignment.equal distributed oracle)
  done

let test_densities_match_oracle () =
  let graph, rng = random_graph 42 in
  let result = E_basic.run ~quiet_rounds:quiet rng graph in
  let oracle = Cluster.Density.compute_all graph in
  Array.iteri
    (fun p st ->
      match st.Distributed.density with
      | Some d ->
          Alcotest.(check bool)
            (Printf.sprintf "density of %d" p)
            true
            (Cluster.Density.equal d oracle.(p))
      | None -> Alcotest.fail "density missing after convergence")
    result.E_basic.states

let test_improved_config_valid_and_separated () =
  let rng = Rng.create ~seed:7 in
  let graph = Builders.random_geometric rng ~intensity:150.0 ~radius:0.12 in
  let result = E_improved.run ~quiet_rounds:quiet ~max_rounds:3000 rng graph in
  Alcotest.(check bool) "converged" true result.E_improved.converged;
  let a = Distributed.to_assignment result.E_improved.states in
  (match Assignment.validate graph a with
  | Ok () -> ()
  | Error ps ->
      Alcotest.failf "invalid: %a"
        Fmt.(list ~sep:comma Assignment.pp_problem)
        ps);
  match Cluster.Metrics.min_head_separation graph a with
  | Some s -> Alcotest.(check bool) "separation >= 3" true (s >= 3)
  | None -> ()

let test_dag_names_locally_unique_after_convergence () =
  let graph, rng = random_graph ~n:50 ~p:0.12 17 in
  let result = E_dag.run ~quiet_rounds:quiet rng graph in
  Alcotest.(check bool) "converged" true result.E_dag.converged;
  let names = Array.map (fun st -> st.Distributed.dag) result.E_dag.states in
  Alcotest.(check bool) "locally unique" true
    (Ss_topology.Dag.locally_unique graph names)

let test_recovery_reaches_same_fixpoint () =
  (* The self-stabilization contract: arbitrary corruption of any subset of
     nodes, then re-convergence to the same legitimate clustering. *)
  for seed = 0 to 4 do
    let graph, rng = random_graph seed in
    let first = E_basic.run ~quiet_rounds:quiet rng graph in
    let before = Distributed.to_assignment first.E_basic.states in
    let n = Graph.node_count graph in
    let victims = Rng.permutation rng n in
    for i = 0 to (n / 2) - 1 do
      let p = victims.(i) in
      first.E_basic.states.(p) <-
        Distributed.corrupt rng p first.E_basic.states.(p)
    done;
    let second =
      E_basic.run ~states:first.E_basic.states ~quiet_rounds:quiet rng graph
    in
    Alcotest.(check bool) "re-converged" true second.E_basic.converged;
    let after = Distributed.to_assignment second.E_basic.states in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d same fixpoint" seed)
      true
      (Assignment.equal before after)
  done

let test_total_corruption_recovers () =
  let graph, rng = random_graph 23 in
  let first = E_basic.run ~quiet_rounds:quiet rng graph in
  let before = Distributed.to_assignment first.E_basic.states in
  Array.iteri
    (fun p st ->
      first.E_basic.states.(p) <- Distributed.corrupt rng p st)
    first.E_basic.states;
  let second =
    E_basic.run ~states:first.E_basic.states ~quiet_rounds:quiet rng graph
  in
  Alcotest.(check bool) "recovered" true
    (Assignment.equal before (Distributed.to_assignment second.E_basic.states))

let test_lossy_channel_converges_to_oracle () =
  (* tau = 0.9 with the default TTL of 3: spurious cache expiry needs three
     consecutive losses (probability 0.1%), so quiet windows are common and
     the reached fixpoint must still be the oracle clustering. *)
  let graph, rng = random_graph ~n:30 33 in
  let result =
    E_basic.run ~channel:(Channel.bernoulli 0.9) ~quiet_rounds:quiet
      ~max_rounds:5000 rng graph
  in
  Alcotest.(check bool) "converged" true result.E_basic.converged;
  let n = Graph.node_count graph in
  let oracle =
    Algorithm.cluster (Rng.create ~seed:1) Config.basic graph
      ~ids:(Array.init n Fun.id)
  in
  Alcotest.(check bool) "oracle fixpoint" true
    (Assignment.equal (Distributed.to_assignment result.E_basic.states) oracle)

let test_knowledge_schedule_small () =
  (* Table 2 at miniature scale: neighbors at round 1, true density by
     round 2 on a clean start with perfect delivery. *)
  let graph = Builders.complete 4 in
  let rng = Rng.create ~seed:3 in
  let states = E_basic.init_states rng graph in
  let snapshots = ref [] in
  (* [run] copies [~states] at entry (warm-start runs never mutate the
     caller's array), so per-round observation goes through [probe]. *)
  let _ =
    E_basic.run ~states
      ~probe:(fun ~round:_ ~graph:_ ~alive:_ sts ->
        snapshots := Array.copy sts :: !snapshots)
      rng graph
  in
  let rounds = Array.of_list (List.rev !snapshots) in
  let oracle = Cluster.Density.compute_all graph in
  Array.iteri
    (fun p st ->
      ignore p;
      Alcotest.(check int) "knows 3 neighbors after round 1" 3
        (List.length st.Distributed.cache))
    rounds.(0);
  Array.iteri
    (fun p st ->
      match st.Distributed.density with
      | Some d ->
          Alcotest.(check bool) "true density after round 2" true
            (Cluster.Density.equal d oracle.(p))
      | None -> Alcotest.fail "density missing")
    rounds.(1)

let test_corrupt_changes_state () =
  let graph, rng = random_graph 44 in
  let result = E_basic.run ~quiet_rounds:quiet rng graph in
  let st = result.E_basic.states.(0) in
  let changed = ref false in
  (* Corruption is randomized; over 20 draws at least one must differ. *)
  for _ = 1 to 20 do
    if not (P_basic.equal_state st (Distributed.corrupt rng 0 st)) then
      changed := true
  done;
  Alcotest.(check bool) "corruption perturbs state" true !changed

let test_to_assignment_defaults () =
  let rng = Rng.create ~seed:55 in
  let graph = Builders.path 3 in
  let states = E_basic.init_states rng graph in
  (* Fresh states elected nothing: everyone reads as their own head. *)
  let a = Distributed.to_assignment states in
  for p = 0 to 2 do
    Alcotest.(check bool) "self head" true (Assignment.is_head a p)
  done

let test_isolated_node_elects_itself () =
  let graph = Graph.of_edges ~n:2 [] in
  let rng = Rng.create ~seed:66 in
  let result = E_basic.run ~quiet_rounds:quiet rng graph in
  let a = Distributed.to_assignment result.E_basic.states in
  Alcotest.(check bool) "node 0 self-heads" true (Assignment.is_head a 0);
  Alcotest.(check bool) "node 1 self-heads" true (Assignment.is_head a 1)

let test_random_order_scheduler_reaches_oracle () =
  (* The randomized daemon (the paper's asynchronous model) reaches the
     same unique fixpoint as lockstep execution for the basic config. *)
  let graph, rng = random_graph ~n:40 77 in
  let result =
    E_basic.run ~scheduler:Ss_engine.Scheduler.Random_order
      ~quiet_rounds:quiet rng graph
  in
  Alcotest.(check bool) "converged" true result.E_basic.converged;
  let n = Graph.node_count graph in
  let oracle =
    Algorithm.cluster (Rng.create ~seed:1) Config.basic graph
      ~ids:(Array.init n Fun.id)
  in
  Alcotest.(check bool) "oracle fixpoint" true
    (Assignment.equal (Distributed.to_assignment result.E_basic.states) oracle)

let test_slotted_contention_converges () =
  (* Real receiver-side collisions instead of the Bernoulli abstraction:
     the stack still stabilizes to the oracle clustering. *)
  let rng = Rng.create ~seed:88 in
  let graph = Builders.random_geometric rng ~intensity:80.0 ~radius:0.15 in
  let slots = 4 * (1 + Graph.max_degree graph) in
  let result =
    E_basic.run
      ~channel:(Channel.slotted ~slots)
      ~quiet_rounds:quiet ~max_rounds:5000 rng graph
  in
  Alcotest.(check bool) "converged" true result.E_basic.converged;
  let n = Graph.node_count graph in
  let oracle =
    Algorithm.cluster (Rng.create ~seed:1) Config.basic graph
      ~ids:(Array.init n Fun.id)
  in
  Alcotest.(check bool) "oracle fixpoint" true
    (Assignment.equal (Distributed.to_assignment result.E_basic.states) oracle)

(* Heavy loss (a jammed quadrant at 50% delivery) needs caches that ride
   out loss bursts: with TTL t, a spurious expiry needs t consecutive
   losses, so t = 20 makes churn negligible even at jam_tau = 0.5. *)
module P_long_ttl = Distributed.Make (struct
  let params = { Distributed.default_params with Distributed.cache_ttl = 20 }
end)

module E_long_ttl = Engine.Make (P_long_ttl)

let test_jammed_region_delays_but_converges () =
  let rng = Rng.create ~seed:89 in
  let graph = Builders.random_geometric rng ~intensity:80.0 ~radius:0.15 in
  let region =
    Ss_geom.Bbox.make ~min_x:0.0 ~min_y:0.0 ~max_x:0.5 ~max_y:0.5
  in
  let channel = Channel.jammed ~tau:1.0 ~region ~jam_tau:0.5 in
  let result =
    E_long_ttl.run ~channel ~quiet_rounds:25 ~max_rounds:5000 rng graph
  in
  Alcotest.(check bool) "converged" true result.E_long_ttl.converged;
  let n = Graph.node_count graph in
  let oracle =
    Algorithm.cluster (Rng.create ~seed:1) Config.basic graph
      ~ids:(Array.init n Fun.id)
  in
  Alcotest.(check bool) "oracle fixpoint" true
    (Assignment.equal (Distributed.to_assignment result.E_long_ttl.states) oracle)

let test_custom_ids_respected () =
  (* Supplying explicit global ids changes tie-breaks exactly as in the
     oracle. *)
  let graph = Builders.cycle 6 in
  let ids = [| 5; 4; 3; 2; 1; 0 |] in
  let module P_ids = Distributed.Make (struct
    let params = { Distributed.default_params with Distributed.ids = Some ids }
  end) in
  let module E_ids = Ss_engine.Engine.Make (P_ids) in
  let rng = Rng.create ~seed:90 in
  let result = E_ids.run ~quiet_rounds:quiet rng graph in
  let a = Distributed.to_assignment result.E_ids.states in
  let oracle = Algorithm.cluster (Rng.create ~seed:1) Config.basic graph ~ids in
  Alcotest.(check bool) "converged" true result.E_ids.converged;
  Alcotest.(check bool) "ids drive the election" true
    (Assignment.equal a oracle);
  (* On an all-ties cycle the smallest id (node 5) must head. *)
  Alcotest.(check bool) "node with id 0 heads" true (Assignment.is_head a 5)

(* --------------------------------------------------------------- qcheck *)

let prop_recovery_legitimate =
  (* Arbitrary topology, arbitrary corruption fraction: after recovery the
     assignment satisfies the structural legitimacy predicate. *)
  QCheck.Test.make ~name:"corruption recovery reaches a legitimate state"
    ~count:40
    (QCheck.make
       ~print:(fun (n, p, seed, frac) ->
         Printf.sprintf "n=%d p=%.2f seed=%d frac=%.2f" n p seed frac)
       QCheck.Gen.(
         quad (int_range 2 40) (float_range 0.02 0.25) (int_range 0 9999)
           (float_range 0.0 1.0)))
    (fun (n, p, seed, frac) ->
      let rng = Rng.create ~seed in
      let graph = Builders.gnp rng ~n ~p in
      let first = E_basic.run ~quiet_rounds:quiet rng graph in
      let count = int_of_float (frac *. float_of_int n) in
      let victims = Rng.permutation rng n in
      for i = 0 to count - 1 do
        let v = victims.(i) in
        first.E_basic.states.(v) <-
          Distributed.corrupt rng v first.E_basic.states.(v)
      done;
      let second =
        E_basic.run ~states:first.E_basic.states ~quiet_rounds:quiet
          ~max_rounds:2000 rng graph
      in
      second.E_basic.converged
      && Assignment.validate graph
           (Distributed.to_assignment second.E_basic.states)
         = Ok ())

let qcheck_cases = List.map QCheck_alcotest.to_alcotest [ prop_recovery_legitimate ]

let suite =
  [
    Alcotest.test_case "matches the oracle on a perfect channel" `Quick
      test_matches_oracle_on_perfect_channel;
    Alcotest.test_case "densities match the oracle" `Quick
      test_densities_match_oracle;
    Alcotest.test_case "improved config validates with separation" `Quick
      test_improved_config_valid_and_separated;
    Alcotest.test_case "DAG names locally unique" `Quick
      test_dag_names_locally_unique_after_convergence;
    Alcotest.test_case "recovery reaches the same fixpoint" `Quick
      test_recovery_reaches_same_fixpoint;
    Alcotest.test_case "total corruption recovers" `Quick
      test_total_corruption_recovers;
    Alcotest.test_case "lossy channel reaches the oracle fixpoint" `Quick
      test_lossy_channel_converges_to_oracle;
    Alcotest.test_case "knowledge schedule (miniature Table 2)" `Quick
      test_knowledge_schedule_small;
    Alcotest.test_case "corrupt perturbs state" `Quick test_corrupt_changes_state;
    Alcotest.test_case "to_assignment defaults to self-heads" `Quick
      test_to_assignment_defaults;
    Alcotest.test_case "isolated nodes elect themselves" `Quick
      test_isolated_node_elects_itself;
    Alcotest.test_case "random-order scheduler reaches the oracle" `Quick
      test_random_order_scheduler_reaches_oracle;
    Alcotest.test_case "slotted contention converges to the oracle" `Quick
      test_slotted_contention_converges;
    Alcotest.test_case "jammed region delays but converges" `Quick
      test_jammed_region_delays_but_converges;
    Alcotest.test_case "custom global ids respected" `Quick
      test_custom_ids_respected;
  ]
  @ qcheck_cases
