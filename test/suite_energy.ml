module Graph = Ss_topology.Graph
module Builders = Ss_topology.Builders
module Energy = Ss_cluster.Energy
module Assignment = Ss_cluster.Assignment
module Density = Ss_cluster.Density
module Rng = Ss_prng.Rng

let test_battery_basics () =
  let b = Energy.battery ~capacity:10.0 in
  Alcotest.(check (float 0.0)) "full" 10.0 (Energy.charge b);
  Alcotest.(check bool) "alive" true (Energy.is_alive b);
  Energy.spend b 4.0;
  Alcotest.(check (float 1e-12)) "spent" 6.0 (Energy.charge b);
  Energy.spend b 100.0;
  Alcotest.(check (float 0.0)) "clamped at zero" 0.0 (Energy.charge b);
  Alcotest.(check bool) "dead" false (Energy.is_alive b);
  Alcotest.check_raises "capacity 0"
    (Invalid_argument "Energy.battery: capacity must be positive") (fun () ->
      ignore (Energy.battery ~capacity:0.0));
  (* A negative drain would silently refund charge; the guard turns the
     sign error into a loud failure at the call site. *)
  Alcotest.check_raises "negative spend"
    (Invalid_argument "Energy.spend: negative amount -2.5 (drains are positive)")
    (fun () -> Energy.spend (Energy.battery ~capacity:10.0) (-2.5))

let test_levels () =
  let b = Energy.battery ~capacity:100.0 in
  Alcotest.(check int) "full level" 7 (Energy.level ~levels:8 b);
  Energy.spend b 50.0;
  Alcotest.(check int) "half level" 4 (Energy.level ~levels:8 b);
  Energy.spend b 50.0;
  Alcotest.(check int) "empty level" 0 (Energy.level ~levels:8 b)

let test_drain_by_role () =
  let g = Builders.star 4 in
  let batteries = Array.init 4 (fun _ -> Energy.battery ~capacity:100.0) in
  (* Hub 0 is the head. *)
  let a = Assignment.make ~parent:[| 0; 0; 0; 0 |] ~head:[| 0; 0; 0; 0 |] in
  ignore g;
  Energy.apply_drain ~drain:Energy.default_drain batteries a;
  Alcotest.(check (float 1e-12)) "head drained more" 95.0
    (Energy.charge batteries.(0));
  Alcotest.(check (float 1e-12)) "member drained less" 99.0
    (Energy.charge batteries.(1))

let test_election_values_prefer_energy_within_band () =
  (* Identical topology roles (a cycle: all densities equal) but different
     charges: the fuller battery must get a strictly larger value. *)
  let g = Builders.cycle 6 in
  let batteries = Array.init 6 (fun _ -> Energy.battery ~capacity:100.0) in
  Energy.spend batteries.(2) 90.0;
  let values = Energy.election_values g batteries in
  Alcotest.(check bool) "drained node ranks lower" true
    (Density.compare values.(2) values.(0) < 0)

let test_living_subgraph () =
  let g = Builders.path 4 in
  let batteries = Array.init 4 (fun _ -> Energy.battery ~capacity:10.0) in
  Energy.spend batteries.(1) 10.0;
  let living = Energy.living_subgraph g batteries in
  Alcotest.(check int) "same node count" 4 (Graph.node_count living);
  Alcotest.(check int) "dead node isolated" 0 (Graph.degree living 1);
  Alcotest.(check bool) "far edge kept" true (Graph.mem_edge living 2 3)

let test_run_epoch_rotates_heads () =
  (* On a cycle everyone ties on density; head duty drains the incumbent
     until a fresher node takes over. *)
  let g = Builders.cycle 8 in
  let rng = Rng.create ~seed:140 in
  let ids = Array.init 8 Fun.id in
  let batteries = Array.init 8 (fun _ -> Energy.battery ~capacity:40.0) in
  let heads_seen = Hashtbl.create 8 in
  let init = ref None in
  for _ = 1 to 20 do
    match Energy.run_epoch ?init_heads:!init rng g batteries ~ids with
    | Some result ->
        List.iter
          (fun h -> Hashtbl.replace heads_seen h ())
          (Assignment.heads result.Energy.assignment);
        init :=
          Some
            (Array.init 8 (fun p -> Assignment.head result.Energy.assignment p))
    | None -> ()
  done;
  Alcotest.(check bool) "head role rotated" true (Hashtbl.length heads_seen >= 2)

let test_run_epoch_none_when_all_dead () =
  let g = Builders.path 3 in
  let rng = Rng.create ~seed:141 in
  let batteries = Array.init 3 (fun _ -> Energy.battery ~capacity:1.0) in
  Array.iter (fun b -> Energy.spend b 1.0) batteries;
  Alcotest.(check bool) "None when dead" true
    (Energy.run_epoch rng g batteries ~ids:[| 0; 1; 2 |] = None)

let test_lifetime_energy_aware_delays_first_death () =
  let rng = Rng.create ~seed:142 in
  let g = Builders.random_geometric rng ~intensity:120.0 ~radius:0.15 in
  let ids = Rng.permutation rng (Graph.node_count g) in
  let aware =
    Energy.simulate_lifetime ~energy_aware:true (Rng.create ~seed:1) g ~ids
  in
  let plain =
    Energy.simulate_lifetime ~energy_aware:false (Rng.create ~seed:1) g ~ids
  in
  Alcotest.(check bool)
    (Printf.sprintf "first death: aware %d >= plain %d"
       aware.Energy.epochs_to_first_death plain.Energy.epochs_to_first_death)
    true
    (aware.Energy.epochs_to_first_death >= plain.Energy.epochs_to_first_death);
  Alcotest.(check bool) "aware rotates more" true
    (aware.Energy.total_head_changes > plain.Energy.total_head_changes)

let test_lifetime_terminates () =
  let g = Builders.complete 5 in
  let lifetime =
    Energy.simulate_lifetime ~capacity:10.0 ~energy_aware:true
      (Rng.create ~seed:2) g ~ids:[| 0; 1; 2; 3; 4 |]
  in
  Alcotest.(check bool) "half-life reached" true
    (lifetime.Energy.epochs_to_half_dead > 0
    && lifetime.Energy.epochs_to_half_dead < 100)

let suite =
  [
    Alcotest.test_case "battery basics" `Quick test_battery_basics;
    Alcotest.test_case "charge levels" `Quick test_levels;
    Alcotest.test_case "drain by role" `Quick test_drain_by_role;
    Alcotest.test_case "election values prefer energy within a band" `Quick
      test_election_values_prefer_energy_within_band;
    Alcotest.test_case "living subgraph" `Quick test_living_subgraph;
    Alcotest.test_case "epochs rotate the head role" `Quick
      test_run_epoch_rotates_heads;
    Alcotest.test_case "all-dead network yields None" `Quick
      test_run_epoch_none_when_all_dead;
    Alcotest.test_case "energy awareness delays the first death" `Quick
      test_lifetime_energy_aware_delays_first_death;
    Alcotest.test_case "lifetime simulation terminates" `Quick
      test_lifetime_terminates;
  ]
