module Model = Ss_mobility.Model
module Fleet = Ss_mobility.Fleet
module Vec2 = Ss_geom.Vec2
module Bbox = Ss_geom.Bbox
module Rng = Ss_prng.Rng

let box = Bbox.unit_square

let start_positions n =
  let rng = Rng.create ~seed:100 in
  Array.init n (fun _ -> Bbox.sample rng box)

let test_static_never_moves () =
  let rng = Rng.create ~seed:101 in
  let positions = start_positions 20 in
  let fleet = Fleet.create rng ~model:Model.static ~box positions in
  Fleet.step fleet 1000.0;
  Array.iteri
    (fun i p ->
      Alcotest.(check bool) "unmoved" true (Vec2.equal p positions.(i)))
    (Fleet.positions fleet)

let test_walk_stays_in_box () =
  let rng = Rng.create ~seed:102 in
  let model = Model.random_walk ~speed_min:0.01 ~speed_max:0.05 () in
  let fleet = Fleet.create rng ~model ~box (start_positions 50) in
  for _ = 1 to 200 do
    Fleet.step fleet 1.0;
    Array.iter
      (fun p -> Alcotest.(check bool) "inside box" true (Bbox.contains box p))
      (Fleet.positions fleet)
  done

let test_walk_speed_bound () =
  let rng = Rng.create ~seed:103 in
  let vmax = 0.02 in
  let model = Model.random_walk ~speed_min:0.0 ~speed_max:vmax () in
  let fleet = Fleet.create rng ~model ~box (start_positions 50) in
  let dt = 0.5 in
  let previous = ref (Fleet.positions fleet) in
  for _ = 1 to 100 do
    Fleet.step fleet dt;
    let current = Fleet.positions fleet in
    Array.iteri
      (fun i p ->
        (* Reflection can only shorten the displacement. *)
        Alcotest.(check bool) "within speed bound" true
          (Vec2.dist p !previous.(i) <= (vmax *. dt) +. 1e-9))
      current;
    previous := current
  done

let test_walk_actually_moves () =
  let rng = Rng.create ~seed:104 in
  let model = Model.random_walk ~speed_min:0.01 ~speed_max:0.02 () in
  let positions = start_positions 20 in
  let fleet = Fleet.create rng ~model ~box positions in
  Fleet.step fleet 10.0;
  let moved = ref 0 in
  Array.iteri
    (fun i p -> if Vec2.dist p positions.(i) > 1e-6 then incr moved)
    (Fleet.positions fleet);
  Alcotest.(check int) "all nodes moved" 20 !moved

let test_waypoint_stays_in_box_and_moves () =
  let rng = Rng.create ~seed:105 in
  let model = Model.random_waypoint ~pause:0.5 ~speed_min:0.02 ~speed_max:0.05 () in
  let positions = start_positions 30 in
  let fleet = Fleet.create rng ~model ~box positions in
  for _ = 1 to 100 do
    Fleet.step fleet 1.0;
    Array.iter
      (fun p -> Alcotest.(check bool) "inside" true (Bbox.contains box p))
      (Fleet.positions fleet)
  done;
  let moved = ref 0 in
  Array.iteri
    (fun i p -> if Vec2.dist p positions.(i) > 1e-6 then incr moved)
    (Fleet.positions fleet);
  Alcotest.(check bool) "most nodes moved" true (!moved > 25)

let test_waypoint_zero_speed_safe () =
  (* A degenerate all-zero speed range must not hang the stepper. *)
  let rng = Rng.create ~seed:106 in
  let model = Model.random_waypoint ~speed_min:0.0 ~speed_max:0.0 () in
  let fleet = Fleet.create rng ~model ~box (start_positions 5) in
  Fleet.step fleet 5.0;
  Alcotest.(check int) "still five nodes" 5 (Fleet.size fleet)

let test_trajectories_deterministic () =
  let run () =
    let rng = Rng.create ~seed:107 in
    let model = Model.pedestrian in
    let fleet = Fleet.create rng ~model ~box (start_positions 10) in
    Fleet.step fleet 30.0;
    Fleet.positions fleet
  in
  let a = run () and b = run () in
  Array.iteri
    (fun i p -> Alcotest.(check bool) "same trajectory" true (Vec2.equal p b.(i)))
    a

let test_step_size_invariance_static_phases () =
  (* Many small steps must agree with one large step while a node stays
     within a single leg (no re-draw): use an enormous leg duration. *)
  let make () =
    let rng = Rng.create ~seed:108 in
    let model =
      Model.random_walk ~mean_leg_duration:1.0e9 ~speed_min:0.01
        ~speed_max:0.01 ()
    in
    Fleet.create rng ~model ~box (start_positions 5)
  in
  let coarse = make () in
  Fleet.step coarse 1.0;
  let fine = make () in
  for _ = 1 to 10 do
    Fleet.step fine 0.1
  done;
  Array.iteri
    (fun i p ->
      Alcotest.(check bool) "paths agree" true
        (Vec2.dist p (Fleet.position fine i) < 1e-9))
    (Fleet.positions coarse)

let test_paper_regimes () =
  (match Model.pedestrian with
  | Model.Random_walk { Model.speed_max; _ } ->
      Alcotest.(check (float 1e-12)) "1.6 m/s in unit coords" 0.0016 speed_max
  | Model.Static | Model.Random_waypoint _ -> Alcotest.fail "expected walk");
  match Model.vehicular with
  | Model.Random_walk { Model.speed_max; _ } ->
      Alcotest.(check (float 1e-12)) "10 m/s in unit coords" 0.01 speed_max
  | Model.Static | Model.Random_waypoint _ -> Alcotest.fail "expected walk"

let test_model_validation () =
  Alcotest.check_raises "inverted speeds"
    (Invalid_argument "Mobility: invalid speed range") (fun () ->
      ignore (Model.random_walk ~speed_min:2.0 ~speed_max:1.0 ()));
  Alcotest.check_raises "negative pause"
    (Invalid_argument "Mobility.random_waypoint: negative pause") (fun () ->
      ignore (Model.random_waypoint ~pause:(-1.0) ~speed_min:0.0 ~speed_max:1.0 ()))

(* ------------------------------------------------- statistical pins -- *)
(* Fixed-seed distributional checks on trajectories observed purely from
   the outside (positions over time): the thresholds are pins with ~2x
   margin over the measured statistic, not live hypothesis tests — a
   model regression (wrong leg law, biased speeds, broken pause) moves
   the statistics by far more than the margin. *)

let ks_statistic sorted cdf =
  let n = float_of_int (Array.length sorted) in
  let d = ref 0.0 in
  Array.iteri
    (fun i x ->
      let f = cdf x in
      d :=
        Float.max !d
          (Float.max
             (Float.abs (f -. (float_of_int i /. n)))
             (Float.abs ((float_of_int (i + 1) /. n) -. f))))
    sorted;
  !d

(* Observe each walker at a fixed sampling period; within a leg the
   per-sample displacement is constant (speed * dt), so legs appear as
   plateaus of the observed speed and the single blended sample at each
   boundary separates them. A plateau of k samples estimates a leg of
   (k + 1) * dt (the two half-shared boundary samples add ~dt). The
   enormous box keeps reflections out of the sampled window. *)
let observed_walk_legs ~nodes ~steps ~dt model =
  let big = 1000.0 in
  let box =
    Bbox.make ~min_x:(-.big) ~min_y:(-.big) ~max_x:big ~max_y:big
  in
  let rng = Rng.create ~seed:120 in
  let start = Array.init nodes (fun _ -> Vec2.v 0.0 0.0) in
  let fleet = Fleet.create rng ~model ~box start in
  let speeds = Array.make_matrix nodes steps 0.0 in
  let prev = ref (Fleet.positions fleet) in
  for t = 0 to steps - 1 do
    Fleet.step fleet dt;
    let cur = Fleet.positions fleet in
    for i = 0 to nodes - 1 do
      speeds.(i).(t) <- Vec2.dist cur.(i) !prev.(i) /. dt
    done;
    prev := cur
  done;
  let legs = ref [] in
  for i = 0 to nodes - 1 do
    let s = speeds.(i) in
    let j = ref 0 in
    while !j < steps do
      let k = ref !j in
      while !k + 1 < steps && Float.abs (s.(!k + 1) -. s.(!j)) < 1e-9 do
        incr k
      done;
      (* Plateaus of one sample are blended boundary steps; the final
         plateau is truncated by the horizon. Both are dropped. *)
      if !k > !j && !k + 1 < steps then
        legs := (float_of_int (!k - !j + 2) *. dt, s.(!j)) :: !legs;
      j := !k + 1
    done
  done;
  !legs

let walk_pin_model =
  (* A wide speed range makes consecutive legs almost surely
     distinguishable by their observed speed. *)
  Model.random_walk ~mean_leg_duration:8.0 ~speed_min:0.02 ~speed_max:1.0 ()

let test_walk_leg_durations_exponential () =
  let legs = observed_walk_legs ~nodes:8 ~steps:20_000 ~dt:0.1 walk_pin_model in
  let durations = Array.of_list (List.map fst legs) in
  Array.sort Float.compare durations;
  let n = Array.length durations in
  Alcotest.(check bool) "enough legs observed" true (n > 1000);
  let mean = Array.fold_left ( +. ) 0.0 durations /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.2f within 10%% of 8.0" mean)
    true
    (Float.abs (mean -. 8.0) < 0.8);
  let d = ks_statistic durations (fun x -> 1.0 -. exp (-.x /. 8.0)) in
  Alcotest.(check bool)
    (Printf.sprintf "KS vs Exp(8.0) = %.4f below pin" d)
    true (d < 0.05)

let test_walk_speeds_uniform () =
  let legs = observed_walk_legs ~nodes:8 ~steps:20_000 ~dt:0.1 walk_pin_model in
  let lo = 0.02 and hi = 1.0 in
  let bins = 8 in
  let counts = Array.make bins 0 in
  let n = ref 0 in
  List.iter
    (fun (_, v) ->
      Alcotest.(check bool) "speed within range" true
        (v >= lo -. 1e-9 && v <= hi +. 1e-9);
      let b =
        min (bins - 1)
          (int_of_float (float_of_int bins *. (v -. lo) /. (hi -. lo)))
      in
      counts.(b) <- counts.(b) + 1;
      incr n)
    legs;
  (* One speed sample per observed leg: longer legs are not
     over-represented, so the draw law itself is what gets binned. *)
  let expected = float_of_int !n /. float_of_int bins in
  let chi2 =
    Array.fold_left
      (fun acc c ->
        let d = float_of_int c -. expected in
        acc +. (d *. d /. expected))
      0.0 counts
  in
  Alcotest.(check bool)
    (Printf.sprintf "chi-square %.2f below pin (7 df)" chi2)
    true (chi2 < 20.0)

let test_waypoint_pause_honored () =
  (* Fixed travel speed, fixed pause: every mid-trajectory stationary
     stretch must last the configured pause within sampling resolution.
     (Back-to-back pauses can merge when a fresh target lands within one
     step of the current position — longer stretches are legal, shorter
     ones never are.) *)
  let pause = 3.0 and dt = 0.1 in
  let model = Model.random_waypoint ~pause ~speed_min:0.3 ~speed_max:0.3 () in
  let rng = Rng.create ~seed:121 in
  let nodes = 5 and steps = 4_000 in
  let fleet = Fleet.create rng ~model ~box (start_positions nodes) in
  let runs = ref [] in
  let still = Array.make nodes 0 in
  let prev = ref (Fleet.positions fleet) in
  for _ = 1 to steps do
    Fleet.step fleet dt;
    let cur = Fleet.positions fleet in
    for i = 0 to nodes - 1 do
      if Vec2.dist cur.(i) !prev.(i) < 1e-15 then still.(i) <- still.(i) + 1
      else begin
        if still.(i) > 0 then runs := (float_of_int still.(i) *. dt) :: !runs;
        still.(i) <- 0
      end
    done;
    prev := cur
  done;
  let n = List.length !runs in
  Alcotest.(check bool) "enough pauses observed" true (n > 100);
  List.iter
    (fun len ->
      Alcotest.(check bool)
        (Printf.sprintf "pause %.2fs not cut short" len)
        true
        (len >= pause -. (2.0 *. dt)))
    !runs;
  let near = List.filter (fun l -> Float.abs (l -. pause) <= 2.0 *. dt) !runs in
  Alcotest.(check bool) "pauses cluster at the configured length" true
    (float_of_int (List.length near) >= 0.9 *. float_of_int n)

let test_reflection_contains_fast_walkers () =
  (* Speeds far above the box size force many reflections per step; the
     billiard fold must still keep every node inside. *)
  let rng = Rng.create ~seed:122 in
  let model = Model.random_walk ~speed_min:0.5 ~speed_max:2.0 () in
  let fleet = Fleet.create rng ~model ~box (start_positions 20) in
  for _ = 1 to 100 do
    Fleet.step fleet 1.0;
    Array.iter
      (fun p -> Alcotest.(check bool) "inside box" true (Bbox.contains box p))
      (Fleet.positions fleet)
  done

(* --------------------------------------------- step_moved / allocation *)

let test_step_moved_matches_step () =
  List.iter
    (fun (name, model) ->
      let make () =
        Fleet.create (Rng.create ~seed:123) ~model ~box (start_positions 40)
      in
      let a = make () and b = make () in
      for _ = 1 to 50 do
        Fleet.step a 0.7;
        let changed = ref [] in
        let count =
          Fleet.step_moved b 0.7 (fun i p -> changed := (i, p) :: !changed)
        in
        for i = 0 to 39 do
          Alcotest.(check bool)
            (name ^ ": same trajectory")
            true
            (Vec2.equal (Fleet.position a i) (Fleet.position b i))
        done;
        Alcotest.(check int)
          (name ^ ": moved count = callbacks")
          count
          (List.length !changed);
        List.iter
          (fun (i, p) ->
            Alcotest.(check bool)
              (name ^ ": callback carries the new position")
              true
              (Vec2.equal p (Fleet.position b i)))
          !changed
      done)
    [
      ("static", Model.static);
      ("walk", Model.pedestrian);
      ( "waypoint",
        Model.random_waypoint ~pause:1.0 ~speed_min:0.0 ~speed_max:0.05 () );
    ]

let test_static_step_moved_reports_nothing () =
  let rng = Rng.create ~seed:124 in
  let fleet = Fleet.create rng ~model:Model.static ~box (start_positions 10) in
  let count = Fleet.step_moved fleet 100.0 (fun _ _ -> Alcotest.fail "moved") in
  Alcotest.(check int) "static fleet reports no movers" 0 count

let test_iter_positions_allocation_free () =
  let rng = Rng.create ~seed:125 in
  let fleet =
    Fleet.create rng ~model:Model.pedestrian ~box (start_positions 1000)
  in
  let count = ref 0 in
  let visit _ _ = incr count in
  Fleet.iter_positions fleet visit;
  let before = Gc.minor_words () in
  Fleet.iter_positions fleet visit;
  let after = Gc.minor_words () in
  Alcotest.(check bool)
    (Printf.sprintf "iter_positions allocated %.0f minor words"
       (after -. before))
    true
    (after -. before < 256.0);
  (* The snapshot API, by contrast, pays a fresh array per call — the
     contrast is the point of the pin. (A 1000-slot array goes straight
     to the major heap, so count total allocated bytes, not minor
     words.) *)
  let before = Gc.allocated_bytes () in
  ignore (Sys.opaque_identity (Fleet.positions fleet));
  let after = Gc.allocated_bytes () in
  Alcotest.(check bool) "positions allocates a snapshot" true
    (after -. before > 7000.0);
  Alcotest.(check int) "every node visited twice" 2000 !count

let test_negative_step_rejected () =
  let rng = Rng.create ~seed:109 in
  let fleet = Fleet.create rng ~model:Model.static ~box (start_positions 3) in
  Alcotest.check_raises "negative dt"
    (Invalid_argument "Fleet.step: negative time step") (fun () ->
      Fleet.step fleet (-1.0))

let suite =
  [
    Alcotest.test_case "static never moves" `Quick test_static_never_moves;
    Alcotest.test_case "walk stays in the box" `Quick test_walk_stays_in_box;
    Alcotest.test_case "walk respects the speed bound" `Quick
      test_walk_speed_bound;
    Alcotest.test_case "walk actually moves" `Quick test_walk_actually_moves;
    Alcotest.test_case "waypoint stays in box and moves" `Quick
      test_waypoint_stays_in_box_and_moves;
    Alcotest.test_case "waypoint zero speed safe" `Quick
      test_waypoint_zero_speed_safe;
    Alcotest.test_case "trajectories deterministic" `Quick
      test_trajectories_deterministic;
    Alcotest.test_case "step-size invariance within a leg" `Quick
      test_step_size_invariance_static_phases;
    Alcotest.test_case "paper speed regimes" `Quick test_paper_regimes;
    Alcotest.test_case "model validation" `Quick test_model_validation;
    Alcotest.test_case "negative step rejected" `Quick test_negative_step_rejected;
    Alcotest.test_case "walk leg durations are exponential" `Slow
      test_walk_leg_durations_exponential;
    Alcotest.test_case "walk speeds are uniform" `Slow test_walk_speeds_uniform;
    Alcotest.test_case "waypoint pause is honored" `Quick
      test_waypoint_pause_honored;
    Alcotest.test_case "reflection contains fast walkers" `Quick
      test_reflection_contains_fast_walkers;
    Alcotest.test_case "step_moved matches step" `Quick
      test_step_moved_matches_step;
    Alcotest.test_case "static step_moved reports nothing" `Quick
      test_static_step_moved_reports_nothing;
    Alcotest.test_case "iter_positions is allocation-free" `Quick
      test_iter_positions_allocation_free;
  ]
