(* Online invariant monitor: divergence classifier, dwell attribution, the
   cluster-stack invariant bundle, and the fault-campaign acceptance
   criteria (a known-good cell reports zero post-recovery violations; a
   starved round budget classifies as still-changing, never silently). *)

module Graph = Ss_topology.Graph
module Builders = Ss_topology.Builders
module Engine = Ss_engine.Engine
module Monitor = Ss_engine.Monitor
module Scheduler = Ss_engine.Scheduler
module Channel = Ss_radio.Channel
module Config = Ss_cluster.Config
module Distributed = Ss_cluster.Distributed
module Invariants = Ss_cluster.Invariants
module Exp_campaign = Ss_experiments.Exp_campaign
module Scenario = Ss_experiments.Scenario
module Rng = Ss_prng.Rng

let rng () = Rng.create ~seed:7331

let check_class msg expected actual =
  let pp fmt c = Monitor.pp_classification fmt c in
  let eq a b =
    match (a, b) with
    | Monitor.Converged, Monitor.Converged -> true
    | Monitor.Still_changing, Monitor.Still_changing -> true
    | ( Monitor.Oscillating { period = p; first_seen = f },
        Monitor.Oscillating { period = p'; first_seen = f' } ) ->
        p = p' && f = f'
    | _ -> false
  in
  Alcotest.check (Alcotest.testable pp eq) msg expected actual

(* ----------------------------------------------------------- classifier *)

let d = Array.map Int64.of_int

let test_classify_oscillation () =
  (* Transient prefix 1,2 then a period-2 tail from round 3. *)
  check_class "period-2 tail dated to its onset"
    (Monitor.Oscillating { period = 2; first_seen = 3 })
    (Monitor.classify ~converged:false ~last_round:8
       (d [| 1; 2; 3; 4; 3; 4; 3; 4 |]))

let test_classify_smallest_period_wins () =
  (* A period-2 signal is also period-4 periodic; the classifier must
     report 2. *)
  check_class "smallest period"
    (Monitor.Oscillating { period = 2; first_seen = 1 })
    (Monitor.classify ~converged:false ~last_round:8
       (d [| 9; 5; 9; 5; 9; 5; 9; 5 |]))

let test_classify_still_changing () =
  check_class "monotone digests are progress" Monitor.Still_changing
    (Monitor.classify ~converged:false ~last_round:6 (d [| 1; 2; 3; 4; 5; 6 |]))

let test_classify_converged_short_circuits () =
  check_class "engine convergence wins" Monitor.Converged
    (Monitor.classify ~converged:true ~last_round:4 (d [| 1; 2; 1; 2 |]))

let test_classify_frozen_outputs_read_as_period_one () =
  (* Outputs constant but the engine never went quiet (internal churn):
     period 1, dated to where the digest froze. *)
  check_class "constant tail"
    (Monitor.Oscillating { period = 1; first_seen = 2 })
    (Monitor.classify ~converged:false ~last_round:5 (d [| 9; 7; 7; 7; 7 |]))

let test_classify_window_too_small () =
  check_class "one sample cannot show a period" Monitor.Still_changing
    (Monitor.classify ~converged:false ~last_round:1 (d [| 3 |]))

(* ------------------------------------------------- dwell / burst algebra *)

(* A hand-driven monitor over one-cell states: digest is the value itself,
   the single invariant fires while the value is positive. *)
let manual_monitor () =
  Monitor.create
    ~digest:(fun ~graph:_ ~alive:_ states -> Int64.of_int states.(0))
    ~invariants:(fun ~graph:_ ~alive:_ states ->
      [ ("bad", if states.(0) > 0 then 1 else 0) ])
    ()

let drive m ~graph ~alive plan =
  List.iter
    (fun (round, value, disturbed) ->
      if disturbed then Monitor.note_disturbance m ~round;
      Monitor.probe m ~round ~graph ~alive [| value |])
    plan

let test_dwell_measured_per_burst () =
  let graph = Builders.path 2 in
  let alive = [| true; true |] in
  let m = manual_monitor () in
  (* Clean prefix; disturbance at 5 violates through 7, clean at 8. *)
  drive m ~graph ~alive
    [
      (1, 0, false); (2, 0, false); (3, 0, false); (4, 0, false);
      (5, 1, true); (6, 1, false); (7, 1, false); (8, 0, false);
    ];
  let r = Monitor.report m ~converged:true in
  (match r.Monitor.bursts with
  | [ { Monitor.first; last; dwell } ] ->
      Alcotest.(check int) "burst opened at the disturbance" 5 first;
      Alcotest.(check int) "single-round burst" 5 last;
      Alcotest.(check (option int)) "dwell = rounds until clean" (Some 3) dwell
  | bs -> Alcotest.failf "expected one burst, got %d" (List.length bs));
  Alcotest.(check (option int)) "max dwell" (Some 3) r.Monitor.max_dwell;
  Alcotest.(check int) "nothing after recovery" 0
    r.Monitor.post_recovery_violations;
  Alcotest.(check int) "no open burst" 0 r.Monitor.unrecovered;
  Alcotest.(check int) "violating rounds counted" 3 r.Monitor.violating_rounds;
  Alcotest.(check (list (pair string int))) "per-label violating rounds"
    [ ("bad", 3) ] r.Monitor.totals

let test_dwell_merges_disturbances_while_dirty () =
  let graph = Builders.path 2 in
  let alive = [| true; true |] in
  let m = manual_monitor () in
  (* Second disturbance lands while still dirty: one burst, dwell counted
     from the LAST disturbance. *)
  drive m ~graph ~alive
    [ (1, 0, false); (2, 1, true); (3, 1, true); (4, 1, false); (5, 0, false) ];
  let r = Monitor.report m ~converged:true in
  (match r.Monitor.bursts with
  | [ { Monitor.first; last; dwell } ] ->
      Alcotest.(check int) "first disturbance opens" 2 first;
      Alcotest.(check int) "second one merges" 3 last;
      Alcotest.(check (option int)) "dwell from the last disturbance" (Some 2)
        dwell
  | bs -> Alcotest.failf "expected one merged burst, got %d" (List.length bs))

let test_post_recovery_violations_counted () =
  let graph = Builders.path 2 in
  let alive = [| true; true |] in
  let m = manual_monitor () in
  (* Burst recovers at 4; a violation with no disturbance at 6 is a closure
     failure, not a new burst. *)
  drive m ~graph ~alive
    [
      (1, 0, false); (2, 1, true); (3, 1, false); (4, 0, false);
      (5, 0, false); (6, 1, false); (7, 0, false);
    ];
  let r = Monitor.report m ~converged:true in
  Alcotest.(check int) "closure failure flagged" 1
    r.Monitor.post_recovery_violations;
  Alcotest.(check int) "still one burst" 1 (List.length r.Monitor.bursts)

let test_cold_start_not_charged () =
  let graph = Builders.path 2 in
  let alive = [| true; true |] in
  let m = manual_monitor () in
  (* Violating from the start with no disturbance: convergence in
     progress, charged to no burst and not to closure. *)
  drive m ~graph ~alive [ (1, 1, false); (2, 1, false); (3, 0, false) ];
  let r = Monitor.report m ~converged:true in
  Alcotest.(check int) "no post-recovery count" 0
    r.Monitor.post_recovery_violations;
  Alcotest.(check (list Alcotest.reject)) "no bursts" [] r.Monitor.bursts

let test_unrecovered_burst_reported () =
  let graph = Builders.path 2 in
  let alive = [| true; true |] in
  let m = manual_monitor () in
  drive m ~graph ~alive [ (1, 0, false); (2, 1, true); (3, 1, false) ];
  let r = Monitor.report m ~converged:false in
  Alcotest.(check int) "open burst at end of run" 1 r.Monitor.unrecovered;
  (match r.Monitor.bursts with
  | [ { Monitor.dwell; _ } ] ->
      Alcotest.(check (option int)) "dwell unknown" None dwell
  | bs -> Alcotest.failf "expected one burst, got %d" (List.length bs))

(* --------------------------------------------- oscillation end to end *)

(* A protocol that cannot stabilize: every node flips its bit every round
   regardless of what it hears. The engine sees perpetual change; the
   monitor must name the period instead of a silent budget exhaustion. *)
module Blinker = struct
  type state = int
  type message = int

  let init _rng _graph p = p mod 2
  let emit _graph _p st = st
  let handle _rng _graph _p st _msgs = 1 - st
  let equal_state = Int.equal
end

module EB = Engine.Make (Blinker)

let test_blinker_classified_oscillating () =
  let g = Builders.path 6 in
  let m =
    Monitor.create
      ~digest:(fun ~graph:_ ~alive:_ states ->
        Array.fold_left
          (fun acc st -> Int64.add (Int64.mul acc 2L) (Int64.of_int st))
          1L states)
      ~invariants:(fun ~graph:_ ~alive:_ _ -> [])
      ()
  in
  let result =
    EB.run ~max_rounds:40 ~probe:(Monitor.probe m) (rng ()) g
  in
  Alcotest.(check bool) "never converges" false result.EB.converged;
  let r = Monitor.report m ~converged:result.EB.converged in
  check_class "period-2 oscillation from round 1"
    (Monitor.Oscillating { period = 2; first_seen = 1 })
    r.Monitor.classification

(* -------------------------------------------------- cluster invariants *)

module PD = Distributed.Make (struct
  let params = Distributed.default_params
end)

module ED = Engine.Make (PD)

let quiet = Distributed.default_params.Distributed.cache_ttl + 2

let test_invariants_clean_after_convergence () =
  let r = rng () in
  let world = Scenario.build r (Scenario.uniform ~count:30 ~radius:0.25 ()) in
  let graph = world.Scenario.graph in
  let ids = Array.init (Graph.node_count graph) Fun.id in
  let result = ED.run ~quiet_rounds:quiet r graph in
  Alcotest.(check bool) "converged" true result.ED.converged;
  let vs =
    Invariants.violations ~config:Config.basic ~ids ~graph:result.ED.graph
      ~alive:result.ED.alive result.ED.states
  in
  List.iter
    (fun (label, count) -> Alcotest.(check int) label 0 count)
    vs

let test_digest_tracks_outputs_not_clocks () =
  let r = rng () in
  let world = Scenario.build r (Scenario.uniform ~count:20 ~radius:0.3 ()) in
  let graph = world.Scenario.graph in
  let result = ED.run ~quiet_rounds:quiet r graph in
  let alive = result.ED.alive in
  let states = result.ED.states in
  let base = Invariants.digest ~graph ~alive states in
  let ticked =
    Array.map
      (fun (st : Distributed.state) -> { st with Distributed.clock = st.Distributed.clock + 1 })
      states
  in
  Alcotest.(check int64) "clock ticks are invisible" base
    (Invariants.digest ~graph ~alive ticked);
  let rehomed = Array.copy states in
  rehomed.(0) <- { rehomed.(0) with Distributed.head = Some 4096 };
  Alcotest.(check bool) "output changes are visible" false
    (Int64.equal base (Invariants.digest ~graph ~alive rehomed))

let blank_state p =
  {
    Distributed.clock = 0;
    gamma = 8;
    gid = p;
    dag = p;
    density = None;
    parent = None;
    head = None;
    cache = [];
    far = [];
  }

let test_head_separation_invariant () =
  (* Path 0-1-2-3 with heads 0 and 2 only 2 hops apart: legal for the
     basic rules, a violation once fusion is on. *)
  let graph = Builders.path 4 in
  let ids = Array.init 4 Fun.id in
  let states =
    [|
      { (blank_state 0) with Distributed.parent = Some 0; head = Some 0 };
      { (blank_state 1) with Distributed.parent = Some 0; head = Some 0 };
      { (blank_state 2) with Distributed.parent = Some 2; head = Some 2 };
      { (blank_state 3) with Distributed.parent = Some 2; head = Some 2 };
    |]
  in
  let alive = [| true; true; true; true |] in
  let find config label =
    List.assoc_opt label (Invariants.violations ~config ~ids ~graph ~alive states)
  in
  Alcotest.(check (option int)) "fusion config flags close heads" (Some 1)
    (find (Config.make ~fusion:true ()) "head-separation");
  Alcotest.(check (option int)) "basic config does not carry the label" None
    (find Config.basic "head-separation")

let test_corrupted_states_never_crash_invariants () =
  (* Out-of-range parents/heads (the transient-fault model corrupts within
     gamma, which exceeds n) must be judged, not crash the predicate. *)
  let graph = Builders.path 4 in
  let ids = Array.init 4 Fun.id in
  let states =
    Array.init 4 (fun p ->
        { (blank_state p) with Distributed.parent = Some 4096; head = Some 700 })
  in
  let alive = [| true; true; true; true |] in
  let vs = Invariants.violations ~config:Config.basic ~ids ~graph ~alive states in
  Alcotest.(check bool) "illegitimate" true
    (match List.assoc_opt "illegitimate" vs with
    | Some c -> c > 0
    | None -> false);
  Alcotest.(check (option int)) "all 8 references are ghosts" (Some 8)
    (List.assoc_opt "ghosts" vs)

(* ------------------------------------------------------ fault campaign *)

let good_cell =
  {
    Exp_campaign.c_fraction = 0.3;
    c_channel = Channel.perfect;
    c_crash = 0.0;
    c_scheduler = Scheduler.Synchronous;
    c_byz = None;
  }

let campaign_spec = Scenario.uniform ~count:40 ~radius:0.2 ()

let test_campaign_good_cell_zero_post_recovery () =
  (* Acceptance: an oscillation-free scenario (perfect channel, pure
     corruption burst) recovers and reports zero post-recovery
     violations. *)
  let row =
    Exp_campaign.run_cell ~seed:11 ~runs:2 ~sparse:false ~spec:campaign_spec
      ~max_rounds:2_000 ~burst_round:40 ~horizon:Exp_campaign.default_horizon
      good_cell
  in
  Alcotest.(check int) "all runs converge" 2 row.Exp_campaign.converged;
  Alcotest.(check int) "no raising runs" 0 row.Exp_campaign.failed;
  Alcotest.(check int) "no open bursts" 0 row.Exp_campaign.unrecovered;
  Alcotest.(check int) "zero post-recovery violations" 0
    row.Exp_campaign.post_violations;
  Alcotest.(check (list Alcotest.reject)) "no replay pointers" []
    row.Exp_campaign.bad;
  Alcotest.(check bool) "the burst was actually dirty" true
    (row.Exp_campaign.max_dwell > 0)

let test_campaign_starved_cell_still_changing () =
  (* Acceptance: a round budget far below cold-start convergence must be
     classified Still_changing, never a silent non-convergence. *)
  let row =
    Exp_campaign.run_cell ~seed:11 ~runs:2 ~sparse:false ~spec:campaign_spec
      ~max_rounds:4 ~burst_round:40 ~horizon:Exp_campaign.default_horizon
      good_cell
  in
  Alcotest.(check int) "nothing converges in 4 rounds" 0
    row.Exp_campaign.converged;
  Alcotest.(check int) "all runs classified still-changing" 2
    row.Exp_campaign.still_changing;
  List.iter
    (fun (_, reason) ->
      Alcotest.(check string) "replay reason" "still-changing" reason)
    row.Exp_campaign.bad;
  Alcotest.(check int) "every run carries a replay pointer" 2
    (List.length row.Exp_campaign.bad)

let test_campaign_survives_raising_cells () =
  (* Acceptance: a cell whose runs raise (here: a negative round budget
     rejected by Engine.run) is recorded with replay pointers; the sweep
     itself never aborts. *)
  let rows =
    Exp_campaign.run ~seed:11 ~runs:2 ~spec:campaign_spec
      ~grid:
        {
          Exp_campaign.g_fractions = [ 0.2 ];
          g_channels = [ Channel.perfect; Channel.slotted ~slots:12 ];
          g_crash = [ 0.0 ];
          g_schedulers = [ Scheduler.Synchronous ];
          g_byz = [ None ];
        }
      ~max_rounds:(-1) ()
  in
  Alcotest.(check int) "both cells reported" 2 (List.length rows);
  List.iter
    (fun row ->
      Alcotest.(check int) "every run failed" 2 row.Exp_campaign.failed;
      Alcotest.(check int) "failures carry replay pointers" 2
        (List.length row.Exp_campaign.bad);
      List.iter
        (fun (run, reason) ->
          Alcotest.(check bool) "run index in range" true (run >= 0 && run < 2);
          Alcotest.(check bool) "reason is the exception text" true
            (String.length reason > 0))
        row.Exp_campaign.bad)
    rows

let suite =
  [
    Alcotest.test_case "classify: oscillation dated to onset" `Quick
      test_classify_oscillation;
    Alcotest.test_case "classify: smallest period wins" `Quick
      test_classify_smallest_period_wins;
    Alcotest.test_case "classify: monotone is still-changing" `Quick
      test_classify_still_changing;
    Alcotest.test_case "classify: converged short-circuits" `Quick
      test_classify_converged_short_circuits;
    Alcotest.test_case "classify: frozen outputs read as period 1" `Quick
      test_classify_frozen_outputs_read_as_period_one;
    Alcotest.test_case "classify: window of one" `Quick
      test_classify_window_too_small;
    Alcotest.test_case "dwell measured per burst" `Quick
      test_dwell_measured_per_burst;
    Alcotest.test_case "disturbances merge while dirty" `Quick
      test_dwell_merges_disturbances_while_dirty;
    Alcotest.test_case "post-recovery violations counted" `Quick
      test_post_recovery_violations_counted;
    Alcotest.test_case "cold start charged to no burst" `Quick
      test_cold_start_not_charged;
    Alcotest.test_case "unrecovered burst reported" `Quick
      test_unrecovered_burst_reported;
    Alcotest.test_case "blinker protocol classified oscillating" `Quick
      test_blinker_classified_oscillating;
    Alcotest.test_case "invariants clean after convergence" `Quick
      test_invariants_clean_after_convergence;
    Alcotest.test_case "digest sees outputs, not clocks" `Quick
      test_digest_tracks_outputs_not_clocks;
    Alcotest.test_case "head-separation invariant" `Quick
      test_head_separation_invariant;
    Alcotest.test_case "corrupted states never crash the predicate" `Quick
      test_corrupted_states_never_crash_invariants;
    Alcotest.test_case "campaign: good cell has zero post-recovery" `Quick
      test_campaign_good_cell_zero_post_recovery;
    Alcotest.test_case "campaign: starved budget is still-changing" `Quick
      test_campaign_starved_cell_still_changing;
    Alcotest.test_case "campaign: raising cells contained" `Quick
      test_campaign_survives_raising_cells;
  ]
