module Summary = Ss_stats.Summary
module Table = Ss_stats.Table

let test_empty_summary () =
  let s = Summary.create () in
  Alcotest.(check int) "count" 0 (Summary.count s);
  Alcotest.(check bool) "mean is nan" true (Float.is_nan (Summary.mean s))

let test_single_value () =
  let s = Summary.of_list [ 42.0 ] in
  Alcotest.(check (float 0.0)) "mean" 42.0 (Summary.mean s);
  Alcotest.(check (float 0.0)) "variance" 0.0 (Summary.variance s);
  Alcotest.(check (float 0.0)) "min" 42.0 (Summary.minimum s);
  Alcotest.(check (float 0.0)) "max" 42.0 (Summary.maximum s)

let test_known_statistics () =
  let s = Summary.of_list [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Summary.mean s);
  (* Sample variance with n-1 = 32/7. *)
  Alcotest.(check (float 1e-9)) "variance" (32.0 /. 7.0) (Summary.variance s);
  Alcotest.(check (float 0.0)) "min" 2.0 (Summary.minimum s);
  Alcotest.(check (float 0.0)) "max" 9.0 (Summary.maximum s)

let test_merge_equals_pooled () =
  let xs = [ 1.0; 2.0; 3.0; 10.0 ] and ys = [ 4.0; 5.0; 6.0; 7.0; 8.0 ] in
  let merged = Summary.merge (Summary.of_list xs) (Summary.of_list ys) in
  let pooled = Summary.of_list (xs @ ys) in
  Alcotest.(check int) "count" (Summary.count pooled) (Summary.count merged);
  Alcotest.(check (float 1e-9)) "mean" (Summary.mean pooled) (Summary.mean merged);
  Alcotest.(check (float 1e-9)) "variance" (Summary.variance pooled)
    (Summary.variance merged);
  Alcotest.(check (float 0.0)) "min" (Summary.minimum pooled)
    (Summary.minimum merged);
  Alcotest.(check (float 0.0)) "max" (Summary.maximum pooled)
    (Summary.maximum merged)

let test_merge_with_empty () =
  let s = Summary.of_list [ 1.0; 2.0 ] in
  let m = Summary.merge (Summary.create ()) s in
  Alcotest.(check (float 1e-9)) "mean kept" 1.5 (Summary.mean m);
  let m = Summary.merge s (Summary.create ()) in
  Alcotest.(check (float 1e-9)) "mean kept (right empty)" 1.5 (Summary.mean m)

let test_ci_shrinks () =
  let narrow = Summary.of_list (List.init 1000 (fun i -> float_of_int (i mod 10))) in
  let wide = Summary.of_list (List.init 10 (fun i -> float_of_int i)) in
  Alcotest.(check bool) "more samples, tighter CI" true
    (Summary.ci95 narrow < Summary.ci95 wide)

let test_add_int () =
  let s = Summary.create () in
  Summary.add_int s 3;
  Summary.add_int s 5;
  Alcotest.(check (float 1e-9)) "mean" 4.0 (Summary.mean s)

let sample_table () =
  let t =
    Table.create ~title:"T" ~header:[ "name"; "value" ]
      ~aligns:[ Table.Left; Table.Right ] ()
  in
  Table.add_rows t [ [ "alpha"; "1" ]; [ "beta"; "22" ] ]

let contains_substring haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec scan i =
    if i + nl > hl then false
    else if String.equal (String.sub haystack i nl) needle then true
    else scan (i + 1)
  in
  scan 0

let test_table_render () =
  let s = Table.render (sample_table ()) in
  Alcotest.(check bool) "has title" true (String.length s > 0 && s.[0] = 'T');
  Alcotest.(check bool) "contains alpha row" true
    (contains_substring s "| alpha |");
  Alcotest.(check bool) "right-aligns value" true
    (contains_substring s "|     1 |")

let test_table_cell_mismatch () =
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "Table.add_row: cell count mismatch") (fun () ->
      ignore (Table.add_row (sample_table ()) [ "only-one" ]))

let test_table_csv () =
  let csv = Table.to_csv (sample_table ()) in
  Alcotest.(check string) "csv" "name,value\nalpha,1\nbeta,22\n" csv

let test_table_csv_escaping () =
  let t = Table.create ~title:"T" ~header:[ "a" ] () in
  let t = Table.add_row t [ "has,comma \"and quotes\"" ] in
  Alcotest.(check string) "escaped" "a\n\"has,comma \"\"and quotes\"\"\"\n"
    (Table.to_csv t)

let test_table_csv_newline_quoting () =
  let t = Table.create ~title:"T" ~header:[ "a"; "b" ] () in
  let t = Table.add_row t [ "line1\nline2"; "plain" ] in
  Alcotest.(check string) "newline quoted" "a,b\n\"line1\nline2\",plain\n"
    (Table.to_csv t);
  let t = Table.create ~title:"T" ~header:[ "a" ] () in
  let t = Table.add_row t [ "," ] in
  let t = Table.add_row t [ "\"" ] in
  let t = Table.add_row t [ "safe" ] in
  Alcotest.(check string) "comma and lone quote" "a\n\",\"\n\"\"\"\"\nsafe\n"
    (Table.to_csv t)

let test_table_row_order_preserved () =
  (* Rows are stored newest-first internally; render and to_csv must still
     report insertion order. *)
  let t =
    List.fold_left
      (fun t i -> Table.add_row t [ Printf.sprintf "r%03d" i ])
      (Table.create ~title:"T" ~header:[ "row" ] ())
      (List.init 100 Fun.id)
  in
  let expected =
    "row\n" ^ String.concat "\n" (List.init 100 (Printf.sprintf "r%03d")) ^ "\n"
  in
  Alcotest.(check string) "csv in insertion order" expected (Table.to_csv t);
  let rendered = String.split_on_char '\n' (Table.render t) in
  Alcotest.(check string) "first data row" "| r000 |" (List.nth rendered 4);
  Alcotest.(check string) "last data row" "| r099 |" (List.nth rendered 103)

let test_cell_formatting () =
  Alcotest.(check string) "float" "3.14" (Table.cell_float ~decimals:2 3.14159);
  Alcotest.(check string) "nan" "-" (Table.cell_float Float.nan);
  Alcotest.(check string) "int" "7" (Table.cell_int 7)

(* Merge must agree with streaming the concatenation, including when one
   or both sides are empty (nan statistics on the empty side). *)
let prop_merge_equals_of_list =
  let close a b =
    (Float.is_nan a && Float.is_nan b)
    || Float.abs (a -. b) <= 1e-9 *. (1.0 +. Float.abs a +. Float.abs b)
  in
  QCheck.Test.make ~name:"Summary.merge = of_list on concatenation" ~count:500
    (QCheck.make
       ~print:(fun (xs, ys) ->
         Printf.sprintf "|xs|=%d |ys|=%d" (List.length xs) (List.length ys))
       QCheck.Gen.(
         pair
           (list_size (int_bound 50) (float_range (-1e6) 1e6))
           (list_size (int_bound 50) (float_range (-1e6) 1e6))))
    (fun (xs, ys) ->
      let merged = Summary.merge (Summary.of_list xs) (Summary.of_list ys) in
      let pooled = Summary.of_list (xs @ ys) in
      Summary.count merged = Summary.count pooled
      && close (Summary.mean merged) (Summary.mean pooled)
      && close (Summary.variance merged) (Summary.variance pooled)
      && close (Summary.minimum merged) (Summary.minimum pooled)
      && close (Summary.maximum merged) (Summary.maximum pooled))

let qcheck_cases = List.map QCheck_alcotest.to_alcotest [ prop_merge_equals_of_list ]

let suite =
  [
    Alcotest.test_case "empty summary" `Quick test_empty_summary;
    Alcotest.test_case "single value" `Quick test_single_value;
    Alcotest.test_case "known statistics" `Quick test_known_statistics;
    Alcotest.test_case "merge equals pooled" `Quick test_merge_equals_pooled;
    Alcotest.test_case "merge with empty" `Quick test_merge_with_empty;
    Alcotest.test_case "CI shrinks with samples" `Quick test_ci_shrinks;
    Alcotest.test_case "add_int" `Quick test_add_int;
    Alcotest.test_case "table renders" `Quick test_table_render;
    Alcotest.test_case "table arity check" `Quick test_table_cell_mismatch;
    Alcotest.test_case "table to CSV" `Quick test_table_csv;
    Alcotest.test_case "CSV escaping" `Quick test_table_csv_escaping;
    Alcotest.test_case "CSV newline and quote escaping" `Quick
      test_table_csv_newline_quoting;
    Alcotest.test_case "row order preserved" `Quick
      test_table_row_order_preserved;
    Alcotest.test_case "cell formatting" `Quick test_cell_formatting;
  ]
  @ qcheck_cases
