module Summary = Ss_stats.Summary
module Table = Ss_stats.Table
module Estimate = Ss_stats.Estimate
module Rng = Ss_prng.Rng

let test_empty_summary () =
  let s = Summary.create () in
  Alcotest.(check int) "count" 0 (Summary.count s);
  Alcotest.(check bool) "mean is nan" true (Float.is_nan (Summary.mean s))

let test_single_value () =
  let s = Summary.of_list [ 42.0 ] in
  Alcotest.(check (float 0.0)) "mean" 42.0 (Summary.mean s);
  Alcotest.(check (float 0.0)) "variance" 0.0 (Summary.variance s);
  Alcotest.(check (float 0.0)) "min" 42.0 (Summary.minimum s);
  Alcotest.(check (float 0.0)) "max" 42.0 (Summary.maximum s)

let test_known_statistics () =
  let s = Summary.of_list [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Summary.mean s);
  (* Sample variance with n-1 = 32/7. *)
  Alcotest.(check (float 1e-9)) "variance" (32.0 /. 7.0) (Summary.variance s);
  Alcotest.(check (float 0.0)) "min" 2.0 (Summary.minimum s);
  Alcotest.(check (float 0.0)) "max" 9.0 (Summary.maximum s)

let test_merge_equals_pooled () =
  let xs = [ 1.0; 2.0; 3.0; 10.0 ] and ys = [ 4.0; 5.0; 6.0; 7.0; 8.0 ] in
  let merged = Summary.merge (Summary.of_list xs) (Summary.of_list ys) in
  let pooled = Summary.of_list (xs @ ys) in
  Alcotest.(check int) "count" (Summary.count pooled) (Summary.count merged);
  Alcotest.(check (float 1e-9)) "mean" (Summary.mean pooled) (Summary.mean merged);
  Alcotest.(check (float 1e-9)) "variance" (Summary.variance pooled)
    (Summary.variance merged);
  Alcotest.(check (float 0.0)) "min" (Summary.minimum pooled)
    (Summary.minimum merged);
  Alcotest.(check (float 0.0)) "max" (Summary.maximum pooled)
    (Summary.maximum merged)

let test_merge_with_empty () =
  let s = Summary.of_list [ 1.0; 2.0 ] in
  let m = Summary.merge (Summary.create ()) s in
  Alcotest.(check (float 1e-9)) "mean kept" 1.5 (Summary.mean m);
  let m = Summary.merge s (Summary.create ()) in
  Alcotest.(check (float 1e-9)) "mean kept (right empty)" 1.5 (Summary.mean m)

let test_ci_shrinks () =
  let narrow = Summary.of_list (List.init 1000 (fun i -> float_of_int (i mod 10))) in
  let wide = Summary.of_list (List.init 10 (fun i -> float_of_int i)) in
  Alcotest.(check bool) "more samples, tighter CI" true
    (Summary.ci95 narrow < Summary.ci95 wide)

let test_add_int () =
  let s = Summary.create () in
  Summary.add_int s 3;
  Summary.add_int s 5;
  Alcotest.(check (float 1e-9)) "mean" 4.0 (Summary.mean s)

let sample_table () =
  let t =
    Table.create ~title:"T" ~header:[ "name"; "value" ]
      ~aligns:[ Table.Left; Table.Right ] ()
  in
  Table.add_rows t [ [ "alpha"; "1" ]; [ "beta"; "22" ] ]

let contains_substring haystack needle =
  let hl = String.length haystack and nl = String.length needle in
  let rec scan i =
    if i + nl > hl then false
    else if String.equal (String.sub haystack i nl) needle then true
    else scan (i + 1)
  in
  scan 0

let test_table_render () =
  let s = Table.render (sample_table ()) in
  Alcotest.(check bool) "has title" true (String.length s > 0 && s.[0] = 'T');
  Alcotest.(check bool) "contains alpha row" true
    (contains_substring s "| alpha |");
  Alcotest.(check bool) "right-aligns value" true
    (contains_substring s "|     1 |")

let test_table_cell_mismatch () =
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "Table.add_row: cell count mismatch") (fun () ->
      ignore (Table.add_row (sample_table ()) [ "only-one" ]))

let test_table_csv () =
  let csv = Table.to_csv (sample_table ()) in
  Alcotest.(check string) "csv" "name,value\nalpha,1\nbeta,22\n" csv

let test_table_csv_escaping () =
  let t = Table.create ~title:"T" ~header:[ "a" ] () in
  let t = Table.add_row t [ "has,comma \"and quotes\"" ] in
  Alcotest.(check string) "escaped" "a\n\"has,comma \"\"and quotes\"\"\"\n"
    (Table.to_csv t)

let test_table_csv_newline_quoting () =
  let t = Table.create ~title:"T" ~header:[ "a"; "b" ] () in
  let t = Table.add_row t [ "line1\nline2"; "plain" ] in
  Alcotest.(check string) "newline quoted" "a,b\n\"line1\nline2\",plain\n"
    (Table.to_csv t);
  let t = Table.create ~title:"T" ~header:[ "a" ] () in
  let t = Table.add_row t [ "," ] in
  let t = Table.add_row t [ "\"" ] in
  let t = Table.add_row t [ "safe" ] in
  Alcotest.(check string) "comma and lone quote" "a\n\",\"\n\"\"\"\"\nsafe\n"
    (Table.to_csv t)

let test_table_row_order_preserved () =
  (* Rows are stored newest-first internally; render and to_csv must still
     report insertion order. *)
  let t =
    List.fold_left
      (fun t i -> Table.add_row t [ Printf.sprintf "r%03d" i ])
      (Table.create ~title:"T" ~header:[ "row" ] ())
      (List.init 100 Fun.id)
  in
  let expected =
    "row\n" ^ String.concat "\n" (List.init 100 (Printf.sprintf "r%03d")) ^ "\n"
  in
  Alcotest.(check string) "csv in insertion order" expected (Table.to_csv t);
  let rendered = String.split_on_char '\n' (Table.render t) in
  Alcotest.(check string) "first data row" "| r000 |" (List.nth rendered 4);
  Alcotest.(check string) "last data row" "| r099 |" (List.nth rendered 103)

let test_cell_formatting () =
  Alcotest.(check string) "float" "3.14" (Table.cell_float ~decimals:2 3.14159);
  Alcotest.(check string) "nan" "-" (Table.cell_float Float.nan);
  Alcotest.(check string) "int" "7" (Table.cell_int 7)

(* Merge must agree with streaming the concatenation, including when one
   or both sides are empty (nan statistics on the empty side). *)
let prop_merge_equals_of_list =
  let close a b =
    (Float.is_nan a && Float.is_nan b)
    || Float.abs (a -. b) <= 1e-9 *. (1.0 +. Float.abs a +. Float.abs b)
  in
  QCheck.Test.make ~name:"Summary.merge = of_list on concatenation" ~count:500
    (QCheck.make
       ~print:(fun (xs, ys) ->
         Printf.sprintf "|xs|=%d |ys|=%d" (List.length xs) (List.length ys))
       QCheck.Gen.(
         pair
           (list_size (int_bound 50) (float_range (-1e6) 1e6))
           (list_size (int_bound 50) (float_range (-1e6) 1e6))))
    (fun (xs, ys) ->
      let merged = Summary.merge (Summary.of_list xs) (Summary.of_list ys) in
      let pooled = Summary.of_list (xs @ ys) in
      Summary.count merged = Summary.count pooled
      && close (Summary.mean merged) (Summary.mean pooled)
      && close (Summary.variance merged) (Summary.variance pooled)
      && close (Summary.minimum merged) (Summary.minimum pooled)
      && close (Summary.maximum merged) (Summary.maximum pooled))

(* ---- Estimate: censored distributions and keyed bootstrap ---- *)

let obs_of (v, c) =
  if c then Estimate.censored (float_of_int v) else Estimate.exact (float_of_int v)

(* Small integer values with censoring flags: ties are frequent, shrinking
   is meaningful. *)
let obs_list_arb =
  QCheck.(list_of_size Gen.(int_range 1 25) (pair (int_bound 20) bool))

let test_estimate_basics () =
  let t = Estimate.of_values [ 3.0; 1.0; 2.0 ] in
  Alcotest.(check int) "count" 3 (Estimate.count t);
  Alcotest.(check int) "censored" 0 (Estimate.censored_count t);
  Alcotest.(check (float 0.0)) "min" 1.0 (Estimate.minimum t);
  Alcotest.(check (float 0.0)) "max" 3.0 (Estimate.maximum t);
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Estimate.mean_lb t);
  Alcotest.(check (option (float 0.0))) "mean exact" (Some 2.0)
    (Estimate.mean_exact t);
  Alcotest.(check (float 0.0)) "median" 2.0 (Estimate.quantile_lb t 0.5);
  Alcotest.(check (option (float 0.0))) "median determined" (Some 2.0)
    (Estimate.quantile t 0.5);
  let c = Estimate.of_obs [ Estimate.exact 1.0; Estimate.censored 5.0 ] in
  Alcotest.(check (option (float 0.0))) "mean censored" None
    (Estimate.mean_exact c);
  (* the 0.5 order statistic is the exact 1.0 whatever the censored value
     becomes; the 1.0 order statistic is unbounded *)
  Alcotest.(check (option (float 0.0))) "low quantile determined" (Some 1.0)
    (Estimate.quantile c 0.5);
  Alcotest.(check (option (float 0.0))) "high quantile censored" None
    (Estimate.quantile c 1.0);
  Alcotest.(check (float 0.0)) "high quantile lb" 5.0 (Estimate.quantile_lb c 1.0);
  Alcotest.check_raises "level > 1"
    (Invalid_argument "Estimate.quantile: level outside [0, 1]") (fun () ->
      ignore (Estimate.quantile_lb t 1.5))

(* Nominal 95% CI coverage, binomial-checked. 200 independent Gaussian
   samples of 30; each trial's bootstrap key and data derive from the
   trial index, so the observed coverage is one fixed number — the band
   [0.88, 0.995] contains every plausible draw of Binomial(200, p) for
   the p ∈ [0.92, 0.96] a percentile bootstrap achieves at this n, and
   excludes broken estimators (p ≤ 0.85 passes a band this wide with
   probability < 1e-3). *)
let coverage_trials = 200
let coverage_band lo hi hits =
  let rate = float_of_int hits /. float_of_int coverage_trials in
  Alcotest.(check bool)
    (Printf.sprintf "coverage %.3f in [%.2f, %.2f]" rate lo hi)
    true
    (rate >= lo && rate <= hi)

let test_bootstrap_mean_coverage () =
  let true_mean = 3.0 in
  let hits = ref 0 in
  for trial = 0 to coverage_trials - 1 do
    let rng = Rng.create ~seed:(9000 + trial) in
    let sample = List.init 30 (fun _ -> true_mean +. Rng.gaussian rng) in
    let ci =
      Estimate.bootstrap_mean
        ~key:(Rng.subkey (Rng.key ~seed:77) trial)
        ~reps:500
        (Estimate.of_values sample)
    in
    if ci.Estimate.lo <= true_mean && true_mean <= ci.Estimate.hi then incr hits
  done;
  coverage_band 0.88 0.995 !hits

let test_bootstrap_median_coverage () =
  let true_median = 3.0 in
  let hits = ref 0 in
  for trial = 0 to coverage_trials - 1 do
    let rng = Rng.create ~seed:(5000 + trial) in
    let sample = List.init 30 (fun _ -> true_median +. Rng.gaussian rng) in
    let ci =
      Estimate.bootstrap_quantile
        ~key:(Rng.subkey (Rng.key ~seed:78) trial)
        ~reps:500 ~q:0.5
        (Estimate.of_values sample)
    in
    if ci.Estimate.lo <= true_median && true_median <= ci.Estimate.hi then
      incr hits
  done;
  (* the median's resampling distribution is discrete, so coverage runs
     conservative — bound it below and at 1 *)
  coverage_band 0.88 1.0 !hits

let test_bootstrap_keyed_determinism () =
  let t =
    Estimate.of_obs
      (List.map obs_of [ (3, false); (1, true); (4, false); (1, false); (5, true) ])
  in
  let key = Rng.key ~seed:123 in
  let a = Estimate.bootstrap_mean ~key t in
  let b = Estimate.bootstrap_mean ~key t in
  Alcotest.(check bool) "same key, same interval" true (a = b);
  Alcotest.(check bool) "ordered" true
    (a.Estimate.lo <= a.Estimate.hi);
  let c = Estimate.bootstrap_mean ~key:(Rng.subkey key 1) t in
  Alcotest.(check bool) "different key, different interval" true (a <> c)

let prop_quantile_monotone =
  QCheck.Test.make ~name:"Estimate.quantile_lb monotone in the level"
    ~count:500
    QCheck.(pair obs_list_arb (pair (float_bound_inclusive 1.0) (float_bound_inclusive 1.0)))
    (fun (obs, (qa, qb)) ->
      QCheck.assume (obs <> []);
      let t = Estimate.of_obs (List.map obs_of obs) in
      let q1 = Float.min qa qb and q2 = Float.max qa qb in
      let v1 = Estimate.quantile_lb t q1 and v2 = Estimate.quantile_lb t q2 in
      v1 <= v2
      && Estimate.minimum t <= v1
      && v2 <= Estimate.maximum t)

(* Brute-force reference for censoring: the nearest-rank order statistic
   of an explicitly completed sample (each censored value pushed right by
   an arbitrary nonnegative amount). [quantile_lb] must equal the
   zero-push completion; [quantile] must be [Some] exactly when the
   zero-push and the push-to-infinity completions agree — and then every
   intermediate completion agrees too (the order statistic is monotone in
   each coordinate). *)
let completed_order_stat obs ~push q =
  let a =
    Array.of_list
      (List.map (fun (v, c) -> float_of_int v +. (if c then push else 0.0)) obs)
  in
  Array.sort Float.compare a;
  let n = Array.length a in
  let r = int_of_float (Float.ceil (q *. float_of_int n)) in
  a.(Stdlib.max 0 (Stdlib.min (n - 1) (r - 1)))

let prop_censored_quantile_vs_bruteforce =
  QCheck.Test.make
    ~name:"Estimate.quantile agrees with brute-force completions" ~count:1000
    QCheck.(pair obs_list_arb (pair (float_bound_inclusive 1.0) (float_bound_inclusive 100.0)))
    (fun (obs, (q, push)) ->
      QCheck.assume (obs <> []);
      let t = Estimate.of_obs (List.map obs_of obs) in
      let lb = Estimate.quantile_lb t q in
      let zero = completed_order_stat obs ~push:0.0 q in
      let inf = completed_order_stat obs ~push:1e18 q in
      let mid = completed_order_stat obs ~push q in
      lb = zero
      && mid >= zero
      (* determinedness = the two extreme completions agree; any
         intermediate push then agrees too *)
      &&
      match Estimate.quantile t q with
      | Some v -> v = zero && v = inf && v = mid
      | None -> zero <> inf)

let prop_ks_vs_bruteforce =
  let ecdf obs v =
    let n = List.length obs in
    float_of_int
      (List.length (List.filter (fun (x, _) -> float_of_int x <= v) obs))
    /. float_of_int n
  in
  QCheck.Test.make ~name:"Estimate.ks_statistic = max ECDF gap" ~count:500
    QCheck.(pair obs_list_arb obs_list_arb)
    (fun (oa, ob) ->
      QCheck.assume (oa <> [] && ob <> []);
      let a = Estimate.of_obs (List.map obs_of oa) in
      let b = Estimate.of_obs (List.map obs_of ob) in
      let naive =
        List.fold_left
          (fun acc (v, _) ->
            let v = float_of_int v in
            Float.max acc (Float.abs (ecdf oa v -. ecdf ob v)))
          0.0 (oa @ ob)
      in
      Float.abs (Estimate.ks_statistic a b -. naive) < 1e-9)

let prop_superiority_vs_bruteforce =
  QCheck.Test.make
    ~name:"Estimate.superiority = pairwise win fraction" ~count:500
    QCheck.(pair obs_list_arb obs_list_arb)
    (fun (oa, ob) ->
      QCheck.assume (oa <> [] && ob <> []);
      let a = Estimate.of_obs (List.map obs_of oa) in
      let b = Estimate.of_obs (List.map obs_of ob) in
      let naive =
        List.fold_left
          (fun acc (x, _) ->
            List.fold_left
              (fun acc (y, _) ->
                acc +. (if x > y then 1.0 else if x = y then 0.5 else 0.0))
              acc ob)
          0.0 oa
        /. float_of_int (List.length oa * List.length ob)
      in
      Float.abs (Estimate.superiority a b -. naive) < 1e-9)

let estimate_qcheck =
  [
    prop_quantile_monotone;
    prop_censored_quantile_vs_bruteforce;
    prop_ks_vs_bruteforce;
    prop_superiority_vs_bruteforce;
  ]

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    (prop_merge_equals_of_list :: estimate_qcheck)

let suite =
  [
    Alcotest.test_case "empty summary" `Quick test_empty_summary;
    Alcotest.test_case "single value" `Quick test_single_value;
    Alcotest.test_case "known statistics" `Quick test_known_statistics;
    Alcotest.test_case "merge equals pooled" `Quick test_merge_equals_pooled;
    Alcotest.test_case "merge with empty" `Quick test_merge_with_empty;
    Alcotest.test_case "CI shrinks with samples" `Quick test_ci_shrinks;
    Alcotest.test_case "add_int" `Quick test_add_int;
    Alcotest.test_case "table renders" `Quick test_table_render;
    Alcotest.test_case "table arity check" `Quick test_table_cell_mismatch;
    Alcotest.test_case "table to CSV" `Quick test_table_csv;
    Alcotest.test_case "CSV escaping" `Quick test_table_csv_escaping;
    Alcotest.test_case "CSV newline and quote escaping" `Quick
      test_table_csv_newline_quoting;
    Alcotest.test_case "row order preserved" `Quick
      test_table_row_order_preserved;
    Alcotest.test_case "cell formatting" `Quick test_cell_formatting;
    Alcotest.test_case "estimate basics" `Quick test_estimate_basics;
    Alcotest.test_case "bootstrap mean coverage ~95%" `Quick
      test_bootstrap_mean_coverage;
    Alcotest.test_case "bootstrap median coverage ~95%" `Quick
      test_bootstrap_median_coverage;
    Alcotest.test_case "bootstrap keyed determinism" `Quick
      test_bootstrap_keyed_determinism;
  ]
  @ qcheck_cases
