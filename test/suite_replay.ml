(* The replay-pointer contract: every anomalous run a sweep reports can
   be re-executed in isolation — same seed, same cell index, same run
   index — and the isolated run reproduces the sweep's verdict exactly
   (same reason text). The contract rests on {!Runner}'s positional
   sub-streams: run [i] of any cell draws stream [i] of the seed, at any
   domain count, so a single-(cell, run) re-execution needs nothing from
   the rest of the sweep.

   Failures are injected deterministically, not mocked: a corruption
   fraction of 1.5 makes [Churn.fraction_burst] raise at plan time
   inside every campaign run, and a Byzantine count of -1 makes the
   adversary sweep's [Array.sub] raise — both land in the graceful
   Run_failed path the replay column points at. *)

module Campaign = Ss_experiments.Exp_campaign
module Adversary_exp = Ss_experiments.Exp_adversary
module Scenario = Ss_experiments.Scenario
module Channel = Ss_radio.Channel
module Scheduler = Ss_engine.Scheduler
module Adversary = Ss_engine.Adversary

let spec = Scenario.uniform ~count:20 ~radius:0.3 ()

let poison_grid =
  {
    Campaign.g_fractions = [ 1.5 ];
    g_channels = [ Channel.perfect ];
    g_crash = [ 0.0 ];
    g_schedulers = [ Scheduler.Synchronous ];
    g_byz = [ None ];
  }

let clean_grid = { poison_grid with Campaign.g_fractions = [ 0.25 ] }

let test_campaign_failed_replay () =
  let rows =
    Campaign.run ~seed:5 ~runs:2 ~spec ~grid:poison_grid ~max_rounds:200 ()
  in
  let row = List.hd rows in
  Alcotest.(check int) "both runs failed" 2 row.Campaign.failed;
  Alcotest.(check int) "both runs listed as bad" 2
    (List.length row.Campaign.bad);
  List.iter
    (fun (i, reason) ->
      let _, verdict =
        Campaign.replay ~seed:5 ~spec ~grid:poison_grid ~max_rounds:200
          ~cell:0 ~run:i ()
      in
      Alcotest.(check (option string))
        (Printf.sprintf "replay of run %d reproduces the sweep verdict" i)
        (Some reason) verdict)
    row.Campaign.bad

let test_campaign_clean_replay () =
  let rows =
    Campaign.run ~seed:5 ~runs:1 ~spec ~grid:clean_grid ~max_rounds:600 ()
  in
  let row = List.hd rows in
  Alcotest.(check (list (pair int string)))
    "sweep reports no anomalies" [] row.Campaign.bad;
  let _, verdict =
    Campaign.replay ~seed:5 ~spec ~grid:clean_grid ~max_rounds:600 ~cell:0
      ~run:0 ()
  in
  Alcotest.(check (option string)) "replay agrees the run is clean" None
    verdict

let test_campaign_replay_domain_independent () =
  (* the bad list itself is positional, so it must not depend on how the
     sweep was scheduled *)
  let bad domains =
    (List.hd
       (Campaign.run ~domains ~seed:5 ~runs:2 ~spec ~grid:poison_grid
          ~max_rounds:200 ()))
      .Campaign.bad
  in
  Alcotest.(check (list (pair int string)))
    "replay pointers identical at 1 vs 3 domains" (bad 1) (bad 3)

let test_adversary_failed_replay () =
  let behaviors = [ Adversary.Stuck ] in
  let counts = [ -1 ] in
  let channels = [ Channel.perfect ] in
  let rows =
    Adversary_exp.run ~seed:9 ~runs:2 ~spec ~behaviors ~counts ~channels
      ~max_rounds:200 ()
  in
  let row = List.hd rows in
  Alcotest.(check int) "both runs failed" 2 row.Adversary_exp.failed;
  List.iter
    (fun (i, reason) ->
      let _, verdict =
        Adversary_exp.replay ~seed:9 ~spec ~behaviors ~counts ~channels
          ~max_rounds:200 ~cell:0 ~run:i ()
      in
      Alcotest.(check (option string))
        (Printf.sprintf "replay of run %d reproduces the sweep verdict" i)
        (Some reason) verdict)
    row.Adversary_exp.bad

let test_adversary_clean_replay () =
  let behaviors = [ Adversary.Stuck ] in
  let counts = [ 1 ] in
  let channels = [ Channel.perfect ] in
  let rows =
    Adversary_exp.run ~seed:9 ~runs:1 ~spec ~behaviors ~counts ~channels
      ~max_rounds:400 ()
  in
  Alcotest.(check (list (pair int string)))
    "sweep reports no anomalies" [] (List.hd rows).Adversary_exp.bad;
  let (behavior, count, channel), verdict =
    Adversary_exp.replay ~seed:9 ~spec ~behaviors ~counts ~channels
      ~max_rounds:400 ~cell:0 ~run:0 ()
  in
  Alcotest.(check string) "replay resolves the config" "stuck"
    (Adversary.behavior_to_string behavior);
  Alcotest.(check int) "count" 1 count;
  Alcotest.(check bool) "channel" true (channel == Channel.perfect);
  Alcotest.(check (option string)) "replay agrees the run is clean" None
    verdict

let test_replay_rejects_out_of_range () =
  Alcotest.check_raises "cell outside the grid"
    (Invalid_argument "Exp_campaign.replay: cell index outside the grid")
    (fun () ->
      ignore
        (Campaign.replay ~seed:5 ~spec ~grid:clean_grid ~cell:99 ~run:0 ()));
  Alcotest.check_raises "negative run index"
    (Invalid_argument "Exp_adversary.replay: negative run index")
    (fun () ->
      ignore
        (Adversary_exp.replay ~seed:9 ~spec ~behaviors:[ Adversary.Stuck ]
           ~counts:[ 1 ] ~channels:[ Channel.perfect ] ~cell:0 ~run:(-1) ()))

let suite =
  [
    Alcotest.test_case "campaign: failed runs replay to the same verdict"
      `Quick test_campaign_failed_replay;
    Alcotest.test_case "campaign: clean run replays clean" `Quick
      test_campaign_clean_replay;
    Alcotest.test_case "campaign: replay pointers domain-independent" `Quick
      test_campaign_replay_domain_independent;
    Alcotest.test_case "adversary: failed runs replay to the same verdict"
      `Quick test_adversary_failed_replay;
    Alcotest.test_case "adversary: clean run replays clean" `Quick
      test_adversary_clean_replay;
    Alcotest.test_case "replay rejects out-of-range indices" `Quick
      test_replay_rejects_out_of_range;
  ]
