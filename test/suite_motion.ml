(* The motion maintainer's proof obligations, as a differential battery.

   (a) Incremental maintenance ≡ full rebuild: over random
       (fleet x mobility model x dt x radius) cases, the graph held by
       [Ss_topology.Motion] after every step must equal a from-scratch
       [Graph.unit_disk] over positions tracked independently through the
       fleet's move callbacks — sorted adjacency rows and all.
   (b) Sparse ≡ dense under motion: when per-round edge diffs feed the
       engine's dirty frontier through the motion hook, the sparse
       executor must agree with the dense reference on every observable,
       including on a position-dependent (jammed) channel where pure
       movement — no edge flip — can change deliveries.
   (c) Edge-diff soundness: each flush's diff applied to round r's edge
       set yields round r+1's edge set, the added/removed lists are
       disjoint canonical [p < q] edges with at least one moved endpoint,
       and [moved] matches exactly the nodes the fleet reported.

   QCheck shrinks a failing case to a minimal fleet and step count.
   Directed pins cover the pieces the properties route through:
   [Grid_index.move], [Dynamic.rebase], no-op flushes, out-of-box
   teleports, and the domain-count independence of the motion sweep. *)

module Graph = Ss_topology.Graph
module Motion = Ss_topology.Motion
module Dynamic = Ss_topology.Dynamic
module Grid_index = Ss_geom.Grid_index
module Vec2 = Ss_geom.Vec2
module Bbox = Ss_geom.Bbox
module Channel = Ss_radio.Channel
module Scheduler = Ss_engine.Scheduler
module Churn = Ss_engine.Churn
module Engine = Ss_engine.Engine
module Model = Ss_mobility.Model
module Fleet = Ss_mobility.Fleet
module Distributed = Ss_cluster.Distributed
module Rng = Ss_prng.Rng

(* ------------------------------------------------- (a) + (c): maintainer *)

type walk_case = {
  w_seed : int;
  w_n : int;
  w_model : int; (* 0 static / 1 slow walk / 2 vehicular / 3 wp pause / 4 wp *)
  w_radius : int; (* index into [radii] *)
  w_dt : int; (* index into [dts] *)
  w_steps : int;
}

let radii = [| 0.05; 0.1; 0.25; 0.5 |]
let dts = [| 0.25; 1.0; 5.0; 30.0 |]

(* Speeds span sub-cell drifts (slow walk at small dt) to whole-box jumps
   (fast waypoint at dt 30): both the patch path and the mass-rebucket
   path of the maintainer get exercised. *)
let build_model = function
  | 0 -> Model.static
  | 1 -> Model.random_walk ~speed_min:0.001 ~speed_max:0.01 ()
  | 2 -> Model.vehicular
  | 3 -> Model.random_waypoint ~pause:2.0 ~speed_min:0.0 ~speed_max:0.05 ()
  | _ -> Model.random_waypoint ~speed_min:0.01 ~speed_max:0.2 ()

(* Step a fleet and the maintainer in lockstep; [shadow] tracks positions
   through the move callbacks only, so the reference rebuild never reads
   the maintainer's own buffer. [check] judges each step. *)
let drive c check =
  let model = build_model (c.w_model mod 5) in
  let radius = radii.(c.w_radius mod Array.length radii) in
  let dt = dts.(c.w_dt mod Array.length dts) in
  let n = max 1 c.w_n in
  let rng = Rng.create ~seed:c.w_seed in
  let start = Array.init n (fun _ -> Bbox.sample rng Bbox.unit_square) in
  let fleet = Fleet.create rng ~model ~box:Bbox.unit_square start in
  let motion = Motion.create ~radius start in
  let shadow = Array.copy start in
  let ok =
    ref (Graph.equal (Motion.graph motion) (Graph.unit_disk ~radius shadow))
  in
  let step = ref 0 in
  while !ok && !step < c.w_steps do
    incr step;
    let prev = Motion.graph motion in
    let moved =
      Fleet.step_moved fleet dt (fun i p ->
          Motion.move motion i p;
          shadow.(i) <- p)
    in
    let diff = Motion.flush motion in
    ok :=
      check ~prev ~moved ~diff ~now:(Motion.graph motion)
        ~reference:(Graph.unit_disk ~radius shadow)
  done;
  !ok

let check_rebuild ~prev:_ ~moved:_ ~diff:_ ~now ~reference =
  Graph.equal now reference

(* Round r's edges, plus added, minus removed, is round r+1's edges; the
   lists are disjoint, canonically oriented, and every flip names a node
   that actually moved. *)
let check_diff ~prev ~moved ~diff ~now ~reference:_ =
  let moved_set = Hashtbl.create 16 in
  List.iter (fun i -> Hashtbl.replace moved_set i ()) diff.Motion.moved;
  let touches_mover (p, q) =
    Hashtbl.mem moved_set p || Hashtbl.mem moved_set q
  in
  let canonical (p, q) = p < q in
  let edges = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace edges e ()) (Graph.edges prev) ;
  try
    if List.length diff.Motion.moved <> moved then raise Exit;
    List.iter
      (fun e ->
        if not (canonical e && touches_mover e && Hashtbl.mem edges e) then
          raise Exit;
        Hashtbl.remove edges e)
      diff.Motion.removed;
    List.iter
      (fun e ->
        if not (canonical e && touches_mover e) then raise Exit;
        if Hashtbl.mem edges e then raise Exit;
        Hashtbl.replace edges e ())
      diff.Motion.added;
    let now_edges = Graph.edges now in
    if List.length now_edges <> Hashtbl.length edges then raise Exit;
    List.iter (fun e -> if not (Hashtbl.mem edges e) then raise Exit) now_edges;
    true
  with Exit -> false

let print_walk c =
  Printf.sprintf "seed=%d n=%d model=%d radius=%.2f dt=%.2f steps=%d" c.w_seed
    c.w_n (c.w_model mod 5)
    radii.(c.w_radius mod Array.length radii)
    dts.(c.w_dt mod Array.length dts)
    c.w_steps

let gen_walk =
  QCheck.Gen.(
    map
      (fun ((w_seed, w_n, w_model), (w_radius, w_dt, w_steps)) ->
        { w_seed; w_n; w_model; w_radius; w_dt; w_steps })
      (pair
         (triple (int_range 0 999_999) (int_range 1 60) (int_range 0 4))
         (triple (int_range 0 3) (int_range 0 3) (int_range 1 25))))

(* Fewer steps first, then a smaller fleet; the model/radius/dt selectors
   stay fixed so the shrunk case still exercises the failing regime. *)
let shrink_walk c yield =
  if c.w_steps > 1 then
    QCheck.Shrink.int c.w_steps (fun w_steps ->
        if w_steps >= 1 then yield { c with w_steps });
  if c.w_n > 1 then
    QCheck.Shrink.int c.w_n (fun w_n -> if w_n >= 1 then yield { c with w_n })

let arb_walk = QCheck.make ~print:print_walk ~shrink:shrink_walk gen_walk

let prop_incremental_equals_rebuild =
  QCheck.Test.make ~name:"incremental maintenance = full rebuild (every step)"
    ~count:500 arb_walk (fun c -> drive c check_rebuild)

let prop_diff_soundness =
  QCheck.Test.make ~name:"edge diff applied to round r = round r+1"
    ~count:500 arb_walk (fun c -> drive c check_diff)

(* ------------------------------------------- (b): sparse = dense + motion *)

type sim_case = {
  s_seed : int;
  s_n : int;
  s_model : int;
  s_channel : int; (* 0 perfect / 1 bernoulli / 2 jammed / 3 slotted *)
  s_sched : int;
  s_ttl : int;
  s_dt : int;
  s_plan : (int * int * int) list; (* (round, event kind, victim) *)
}

let jam_region = Bbox.make ~min_x:0.2 ~min_y:0.2 ~max_x:0.8 ~max_y:0.8

let build_channel c =
  match c.s_channel mod 4 with
  | 0 -> Channel.perfect
  | 1 -> Channel.bernoulli 0.7
  | 2 -> Channel.jammed ~tau:0.9 ~region:jam_region ~jam_tau:0.3
  | _ -> Channel.slotted ~slots:4

let build_scheduler c =
  match c.s_sched mod 3 with
  | 0 -> Scheduler.Synchronous
  | 1 -> Scheduler.Sequential
  | _ -> Scheduler.Random_order

(* Node events only: a random link event names an edge of the initial
   graph, but motion may have rebased that edge away by the time the plan
   fires, and [Dynamic] (correctly) rejects non-base links. Link flapping
   on a static base is suite_sparse's job. *)
let build_plan c =
  let n = max 4 c.s_n in
  Churn.schedule
    (List.map
       (fun (round, kind, victim) ->
         let v = victim mod n in
         let ev =
           match kind mod 5 with
           | 0 -> Churn.Crash v
           | 1 -> Churn.Join v
           | 2 -> Churn.Sleep v
           | 3 -> Churn.Wake v
           | _ -> Churn.Corrupt v
         in
         (1 + (round mod 10), [ ev ]))
       c.s_plan)

let run_sim_case c =
  let module P = Distributed.Make (struct
    let params =
      { Distributed.default_params with cache_ttl = 1 + (c.s_ttl mod 4) }
  end) in
  let module E = Engine.Make (P) in
  let model = build_model (c.s_model mod 5) in
  let dt = dts.(c.s_dt mod Array.length dts) in
  let n = max 4 c.s_n in
  let radius = 0.3 in
  let channel = build_channel c in
  let scheduler = build_scheduler c in
  let churn = build_plan c in
  let exec mode =
    (* Fresh same-seeded generators per execution: deployment, fleet
       sub-streams and every sequential engine draw line up by
       construction; everything in-round is counter-keyed. *)
    let rng = Rng.create ~seed:c.s_seed in
    let start = Array.init n (fun _ -> Bbox.sample rng Bbox.unit_square) in
    let fleet = Fleet.create rng ~model ~box:Bbox.unit_square start in
    let motion = Motion.create ~radius start in
    let hook ~round:_ =
      let moved =
        Fleet.step_moved fleet dt (fun i p -> Motion.move motion i p)
      in
      if moved = 0 then None
      else
        (* Report even a flip-free flush: on a position-dependent channel
           the moved nodes alone must reach the sparse frontier. *)
        let diff = Motion.flush motion in
        Some (Motion.graph motion, diff)
    in
    E.run ~mode ~scheduler ~channel ~max_rounds:30 ~quiet_rounds:3 ~churn
      ~corrupt:Distributed.corrupt ~motion:hook rng (Motion.graph motion)
  in
  let dense = exec E.Dense in
  let sparse = exec (E.Sparse { warm = Some Distributed.pending_expiry }) in
  let states_agree =
    Array.for_all2
      (fun a b -> P.equal_state a b)
      dense.E.states sparse.E.states
  in
  states_agree
  && dense.E.rounds = sparse.E.rounds
  && dense.E.converged = sparse.E.converged
  && dense.E.last_change_round = sparse.E.last_change_round
  && dense.E.change_history = sparse.E.change_history
  && dense.E.alive = sparse.E.alive
  && dense.E.bursts = sparse.E.bursts
  && dense.E.faults = sparse.E.faults
  && Graph.equal dense.E.graph sparse.E.graph

let print_sim c =
  Printf.sprintf
    "seed=%d n=%d model=%d channel=%d sched=%d ttl=%d dt=%.2f plan=[%s]"
    c.s_seed (max 4 c.s_n) (c.s_model mod 5) (c.s_channel mod 4)
    (c.s_sched mod 3) (1 + (c.s_ttl mod 4))
    dts.(c.s_dt mod Array.length dts)
    (String.concat "; "
       (List.map
          (fun (r, k, v) -> Printf.sprintf "(%d,%d,%d)" r k v)
          c.s_plan))

let gen_sim =
  QCheck.Gen.(
    map
      (fun ((s_seed, s_n, s_model), (s_channel, s_sched, s_ttl), (s_dt, s_plan))
         ->
        { s_seed; s_n; s_model; s_channel; s_sched; s_ttl; s_dt; s_plan })
      (triple
         (triple (int_range 0 999_999) (int_range 4 30) (int_range 0 4))
         (triple (int_range 0 3) (int_range 0 2) (int_range 0 3))
         (pair (int_range 0 3)
            (list_size (int_range 0 8)
               (triple (int_range 0 9) (int_range 0 4) (int_range 0 999))))))

let shrink_sim c yield =
  QCheck.Shrink.list c.s_plan (fun s_plan -> yield { c with s_plan });
  if c.s_n > 4 then
    QCheck.Shrink.int c.s_n (fun s_n -> if s_n >= 4 then yield { c with s_n })

let arb_sim = QCheck.make ~print:print_sim ~shrink:shrink_sim gen_sim

let prop_sparse_equals_dense_motion =
  QCheck.Test.make
    ~name:"sparse run = dense run under motion (all observables)" ~count:300
    arb_sim run_sim_case

(* A directed pin on the position-dependent path: a jammed channel, a
   mobile fleet and zero churn — deliveries flip only because nodes drift
   across the jam boundary, so an executor that marked flipped edges but
   not moved nodes would diverge here. *)
let test_jammed_motion_equivalence () =
  List.iter
    (fun s_seed ->
      let c =
        {
          s_seed;
          s_n = 24;
          s_model = 4;
          s_channel = 2;
          s_sched = 0;
          s_ttl = 1;
          s_dt = 3;
          s_plan = [];
        }
      in
      Alcotest.(check bool)
        (Printf.sprintf "seed %d jammed equivalence" s_seed)
        true (run_sim_case c))
    [ 7; 8; 9; 10 ]

(* ------------------------------------------------------------- directed *)

let test_idle_flush_is_noop () =
  let rng = Rng.create ~seed:11 in
  let pos = Array.init 30 (fun _ -> Bbox.sample rng Bbox.unit_square) in
  let motion = Motion.create ~radius:0.2 pos in
  let g0 = Motion.graph motion in
  let diff = Motion.flush motion in
  Alcotest.(check bool) "empty diff" true (diff = Motion.empty_diff);
  Alcotest.(check bool) "same graph object" true (Motion.graph motion == g0);
  (* A move to the identical position must not count as motion. *)
  Motion.move motion 3 (Motion.position motion 3);
  let diff = Motion.flush motion in
  Alcotest.(check bool) "identity move: empty diff" true
    (diff = Motion.empty_diff);
  Alcotest.(check bool) "identity move: same graph" true
    (Motion.graph motion == g0)

let test_teleport_outside_box () =
  (* Moves far outside the index's box land in clamped border cells; the
     graph must still match a full rebuild. *)
  let rng = Rng.create ~seed:12 in
  let pos = Array.init 20 (fun _ -> Bbox.sample rng Bbox.unit_square) in
  let motion = Motion.create ~radius:0.3 pos in
  let shadow = Array.copy pos in
  let targets =
    [ (0, Vec2.v 1.9 (-0.4)); (1, Vec2.v (-2.0) 3.0); (2, Vec2.v 0.5 9.9) ]
  in
  List.iter
    (fun (i, p) ->
      Motion.move motion i p;
      shadow.(i) <- p)
    targets;
  ignore (Motion.flush motion);
  Alcotest.(check bool) "teleport matches rebuild" true
    (Graph.equal (Motion.graph motion) (Graph.unit_disk ~radius:0.3 shadow));
  (* And coming back into the box keeps matching. *)
  Motion.move motion 0 (Vec2.v 0.5 0.5);
  shadow.(0) <- Vec2.v 0.5 0.5;
  ignore (Motion.flush motion);
  Alcotest.(check bool) "return matches rebuild" true
    (Graph.equal (Motion.graph motion) (Graph.unit_disk ~radius:0.3 shadow))

let test_grid_index_move () =
  let rng = Rng.create ~seed:13 in
  let points = Array.init 50 (fun _ -> Bbox.sample rng Bbox.unit_square) in
  let index = Grid_index.build ~box:Bbox.unit_square ~cell:0.1 points in
  (* [build] adopts the array: mutate a point, notify the index, and the
     range queries must see the new position. *)
  points.(7) <- Vec2.v 0.05 0.95;
  Grid_index.move index 7;
  let brute center radius =
    let acc = ref [] in
    Array.iteri
      (fun i p -> if Vec2.dist center p <= radius then acc := i :: !acc)
      points;
    List.sort Int.compare !acc
  in
  List.iter
    (fun (cx, cy, r) ->
      let center = Vec2.v cx cy in
      Alcotest.(check (list int))
        (Printf.sprintf "within (%.2f,%.2f) r=%.2f" cx cy r)
        (brute center r)
        (List.sort Int.compare (Grid_index.within index center r)))
    [ (0.05, 0.95, 0.15); (0.5, 0.5, 0.3); (0.0, 1.0, 0.12) ]

let test_dynamic_rebase () =
  let g_full = Graph.of_edges ~n:3 [ (0, 1); (1, 2) ] in
  let g_cut = Graph.of_edges ~n:3 [ (1, 2) ] in
  let dyn = Dynamic.create g_full in
  ignore (Dynamic.link_down dyn 0 1);
  Alcotest.(check bool) "downed link absent" false
    (Graph.mem_edge (Dynamic.snapshot dyn) 0 1);
  (* The link leaves radio range: its down-mark must be dropped... *)
  Dynamic.rebase dyn ~base:g_cut ~added:[] ~removed:[ (0, 1) ];
  Alcotest.(check (list (pair int int))) "no downed links" []
    (Dynamic.down_list dyn);
  Alcotest.(check bool) "snapshot = materialize after removal" true
    (Graph.equal (Dynamic.snapshot dyn) (Dynamic.materialize dyn));
  (* ...so when the pair drifts back into range the link starts up. *)
  Dynamic.rebase dyn ~base:g_full ~added:[ (0, 1) ] ~removed:[];
  Alcotest.(check bool) "returned link is up" true
    (Graph.mem_edge (Dynamic.snapshot dyn) 0 1);
  Alcotest.(check bool) "snapshot = materialize after return" true
    (Graph.equal (Dynamic.snapshot dyn) (Dynamic.materialize dyn));
  (* Statuses survive a rebase; node-count changes are rejected. *)
  ignore (Dynamic.sleep dyn 2);
  Dynamic.rebase dyn ~base:g_cut ~added:[] ~removed:[ (0, 1) ];
  Alcotest.(check bool) "sleeper still asleep" false (Dynamic.is_alive dyn 2);
  Alcotest.check_raises "node count mismatch"
    (Invalid_argument "Dynamic.rebase: node count mismatch") (fun () ->
      Dynamic.rebase dyn
        ~base:(Graph.of_edges ~n:4 [ (0, 1) ])
        ~added:[ (0, 1) ] ~removed:[])

(* The motion sweep must be bit-identical for any domain count: same
   seeds, same rows, same rendering. *)
let test_exp_motion_domain_independence () =
  let module X = Ss_experiments.Exp_motion in
  let module Scenario = Ss_experiments.Scenario in
  let sweep domains =
    let rows =
      X.run ~seed:7 ~runs:2 ~domains
        ~spec:(Scenario.poisson ~intensity:60.0 ~radius:0.2 ())
        ~regimes:
          [
            { X.label = "static"; model = Model.static; speed_max = 0.0 };
            {
              X.label = "walk";
              model = X.walk ~speed_max:10.0;
              speed_max = 10.0;
            };
          ]
        ~rounds:25 ()
    in
    Ss_stats.Table.to_csv (X.to_table rows)
  in
  Alcotest.(check string) "1 domain = 4 domains" (sweep 1) (sweep 4)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_incremental_equals_rebuild;
      prop_diff_soundness;
      prop_sparse_equals_dense_motion;
    ]

let suite =
  [
    Alcotest.test_case "idle and identity flushes are no-ops" `Quick
      test_idle_flush_is_noop;
    Alcotest.test_case "teleports outside the box" `Quick
      test_teleport_outside_box;
    Alcotest.test_case "grid index tracks moved points" `Quick
      test_grid_index_move;
    Alcotest.test_case "dynamic rebase drops stale down-marks" `Quick
      test_dynamic_rebase;
    Alcotest.test_case "jammed channel: movement-only equivalence" `Quick
      test_jammed_motion_equivalence;
    Alcotest.test_case "motion sweep is domain-count independent" `Slow
      test_exp_motion_domain_independence;
  ]
  @ qcheck_cases
