(* Tests anchored to the paper's formal claims:

     Lemma 1   — correct density within an expected constant time;
     Lemma 2   — stabilization time proportional to the height of DAG≺,
                 which is bounded;
     Theorem 1 — N1 reaches locally-unique names (suite_dag_id);
     §3        — the number of cluster-heads decreases as the node
                 intensity grows;
     §4.3      — the fusion refinement's structural guarantees;
     §4        — every converged state satisfies the legitimacy predicate,
                 from clean or corrupted starts. *)

module Graph = Ss_topology.Graph
module Builders = Ss_topology.Builders
module Dag = Ss_topology.Dag
module Cluster = Ss_cluster
module Config = Ss_cluster.Config
module Algorithm = Ss_cluster.Algorithm
module Assignment = Ss_cluster.Assignment
module Legitimacy = Ss_cluster.Legitimacy
module Order = Ss_cluster.Order
module Distributed = Ss_cluster.Distributed
module Rng = Ss_prng.Rng

(* -------------------------------------------------- Lemma 1 (density) *)

module P = Distributed.Make (struct
  let params = Distributed.default_params
end)

module E = Ss_engine.Engine.Make (P)

let test_lemma1_density_by_round_two () =
  (* On a perfect channel from a clean start, every node holds its correct
     density after exactly two steps — the constant of Lemma 1. *)
  for seed = 0 to 4 do
    let rng = Rng.create ~seed in
    let graph = Builders.gnp rng ~n:40 ~p:0.1 in
    let oracle = Cluster.Density.compute_all graph in
    let states = E.init_states rng graph in
    let ok_at_two = ref true in
    (* [run] copies [~states] at entry, so the round-2 inspection goes
       through [probe], which lends the live array. *)
    let _ =
      E.run ~states
        ~probe:(fun ~round ~graph:_ ~alive:_ sts ->
          if round = 2 then
            Array.iteri
              (fun p st ->
                match st.Distributed.density with
                | Some d ->
                    if not (Cluster.Density.equal d oracle.(p)) then
                      ok_at_two := false
                | None -> ok_at_two := false)
              sts)
        rng graph
    in
    Alcotest.(check bool)
      (Printf.sprintf "seed %d: densities correct at step 2" seed)
      true !ok_at_two
  done

(* ---------------------------------------- Lemma 2 (DAG≺ height bound) *)

let dag_prec_height outcome graph =
  (* The DAG induced by ≺ over the radio links, as in the proof. *)
  let key p =
    Order.key ~value:outcome.Algorithm.values.(p)
      ~id:outcome.Algorithm.effective_ids.(p) ~incumbent:false
  in
  Dag.height
    (Dag.of_compare graph (fun p q ->
         Order.compare ~tie:Order.Id_only (key p) (key q)))

let test_lemma2_rounds_bounded_by_dag_height () =
  (* Synchronous stabilization needs at most height(DAG≺) + c rounds:
     densities settle in one round (static here), heads walk down the DAG. *)
  for seed = 0 to 9 do
    let rng = Rng.create ~seed in
    let graph = Builders.gnp rng ~n:60 ~p:0.08 in
    let ids = Rng.permutation rng 60 in
    let outcome = Algorithm.run rng Config.basic graph ~ids in
    match dag_prec_height outcome graph with
    | Some h ->
        Alcotest.(check bool)
          (Printf.sprintf "seed %d: rounds %d <= height %d + 3" seed
             outcome.Algorithm.rounds h)
          true
          (outcome.Algorithm.rounds <= h + 3)
    | None -> Alcotest.fail "DAG≺ ill-formed despite unique ids"
  done

let test_lemma2_dag_height_value_space () =
  (* The proof bounds DAG≺'s height through the value space γδ³; more
     directly, the height can never exceed the number of distinct
     (density, id) keys minus one. *)
  let rng = Rng.create ~seed:7 in
  let graph = Builders.random_geometric rng ~intensity:200.0 ~radius:0.1 in
  let ids = Rng.permutation rng (Graph.node_count graph) in
  let outcome = Algorithm.run rng Config.basic graph ~ids in
  match dag_prec_height outcome graph with
  | Some h ->
      let distinct =
        List.sort_uniq compare
          (List.init (Graph.node_count graph) (fun p ->
               ( Cluster.Density.to_float outcome.Algorithm.values.(p),
                 outcome.Algorithm.effective_ids.(p) )))
      in
      Alcotest.(check bool) "height < distinct keys" true
        (h < List.length distinct)
  | None -> Alcotest.fail "DAG≺ ill-formed"

(* -------------------------------------------- §3 (head count vs λ) *)

let mean_heads ~intensity ~radius =
  let total = ref 0 and runs = 8 in
  for seed = 0 to runs - 1 do
    let rng = Rng.create ~seed in
    let graph = Builders.random_geometric rng ~intensity ~radius in
    let ids = Rng.permutation rng (Graph.node_count graph) in
    let a = Algorithm.cluster rng Config.basic graph ~ids in
    (* Count heads that actually lead someone or stand alone legitimately;
       here simply all heads. *)
    total := !total + Assignment.cluster_count a
  done;
  float_of_int !total /. float_of_int runs

let test_head_count_decreases_with_intensity () =
  (* "the number of cluster-heads computed with this metric is bounded and
     decreases when the nodes intensity increases" (§3). *)
  let sparse = mean_heads ~intensity:300.0 ~radius:0.1 in
  let dense = mean_heads ~intensity:900.0 ~radius:0.1 in
  Alcotest.(check bool)
    (Printf.sprintf "heads at lambda=900 (%.1f) < at lambda=300 (%.1f)" dense
       sparse)
    true (dense < sparse)

(* ------------------------------------------------ §4.3 fusion claims *)

let improved_outcome seed =
  let rng = Rng.create ~seed in
  let graph = Builders.random_geometric rng ~intensity:250.0 ~radius:0.1 in
  let ids = Rng.permutation rng (Graph.node_count graph) in
  let outcome =
    Algorithm.run ~scheduler:Algorithm.Sequential rng Config.improved graph ~ids
  in
  (graph, ids, outcome)

let test_fusion_claim_iii_separation () =
  for seed = 0 to 4 do
    let graph, _, outcome = improved_outcome seed in
    match
      Cluster.Metrics.min_head_separation graph outcome.Algorithm.assignment
    with
    | Some s ->
        Alcotest.(check bool)
          (Printf.sprintf "seed %d separation %d >= 3" seed s)
          true (s >= 3)
    | None -> ()
  done

let test_fusion_claim_i_head_centrality () =
  (* "(i) a cluster-head is not too off-centered in its own cluster": the
     head's within-cluster eccentricity never exceeds the cluster's
     diameter (trivially) and stays within 2x the best possible radius.
     We check the quantitative half the data supports: head eccentricity
     <= diameter of the cluster. *)
  let graph, _, outcome = improved_outcome 11 in
  let a = outcome.Algorithm.assignment in
  List.iter
    (fun (h, members) ->
      let in_cluster p = List.mem p members in
      let ecc_head =
        Ss_topology.Traversal.eccentricity ~filter:in_cluster graph h
      in
      let diameter =
        List.fold_left
          (fun acc p ->
            max acc
              (Ss_topology.Traversal.eccentricity ~filter:in_cluster graph p))
          0 members
      in
      Alcotest.(check bool)
        (Printf.sprintf "head %d ecc %d <= diameter %d" h ecc_head diameter)
        true
        (ecc_head <= diameter))
    (Assignment.clusters a)

(* --------------------------------------------- legitimacy predicate *)

let test_algorithm_outputs_legitimate () =
  List.iter
    (fun config ->
      for seed = 0 to 4 do
        let rng = Rng.create ~seed in
        let graph = Builders.gnp rng ~n:50 ~p:0.1 in
        let ids = Rng.permutation rng 50 in
        let outcome =
          Algorithm.run ~scheduler:Algorithm.Sequential rng config graph ~ids
        in
        let dag_names =
          match outcome.Algorithm.dag with
          | Some d -> Some d.Cluster.Dag_id.names
          | None -> None
        in
        match
          Legitimacy.check ?dag_names config graph ~ids
            outcome.Algorithm.assignment
        with
        | Ok () -> ()
        | Error vs ->
            Alcotest.failf "illegitimate output (%a, seed %d): %a" Config.pp
              config seed
              Fmt.(list ~sep:comma Legitimacy.pp_violation)
              vs
      done)
    [ Config.basic; Config.with_dag; Config.improved ]

let test_perturbed_assignment_is_illegitimate () =
  let rng = Rng.create ~seed:3 in
  let graph = Builders.random_geometric rng ~intensity:150.0 ~radius:0.12 in
  let ids = Rng.permutation rng (Graph.node_count graph) in
  let a = Algorithm.cluster rng Config.basic graph ~ids in
  (* Steal the head role: point some non-head node's H at itself. *)
  let n = Graph.node_count graph in
  let victim =
    let rec find p = if Assignment.is_head a p then find (p + 1) else p in
    find 0
  in
  let parent = Array.init n (fun p -> Assignment.parent a p) in
  let head = Array.init n (fun p -> Assignment.head a p) in
  head.(victim) <- victim;
  parent.(victim) <- victim;
  let forged = Assignment.make ~parent ~head in
  Alcotest.(check bool) "forged state rejected" false
    (Legitimacy.is_legitimate Config.basic graph ~ids forged)

let test_recovered_state_legitimate () =
  (* After corruption and re-convergence, the distributed stack's state
     satisfies the legitimacy predicate — the formal statement of
     self-stabilization. *)
  let rng = Rng.create ~seed:5 in
  let graph = Builders.gnp rng ~n:50 ~p:0.1 in
  let quiet = Distributed.default_params.Distributed.cache_ttl + 2 in
  let first = E.run ~quiet_rounds:quiet rng graph in
  Array.iteri
    (fun p st -> first.E.states.(p) <- Distributed.corrupt rng p st)
    first.E.states;
  let second = E.run ~states:first.E.states ~quiet_rounds:quiet rng graph in
  let a = Distributed.to_assignment second.E.states in
  let ids = Array.init (Graph.node_count graph) Fun.id in
  match Legitimacy.check Config.basic graph ~ids a with
  | Ok () -> ()
  | Error vs ->
      Alcotest.failf "recovered state illegitimate: %a"
        Fmt.(list ~sep:comma Legitimacy.pp_violation)
        vs

(* ------------------------------------------------------------ qcheck *)

let prop_outputs_legitimate =
  QCheck.Test.make ~name:"all configurations produce legitimate states"
    ~count:80
    (QCheck.make
       ~print:(fun (n, p, seed, which) ->
         Printf.sprintf "n=%d p=%.2f seed=%d config=%d" n p seed which)
       QCheck.Gen.(
         quad (int_range 1 45) (float_range 0.0 0.3) (int_range 0 9999)
           (int_range 0 2)))
    (fun (n, p, seed, which) ->
      let config =
        match which with
        | 0 -> Config.basic
        | 1 -> Config.improved
        | _ -> Config.with_dag
      in
      let rng = Rng.create ~seed in
      let graph = Builders.gnp rng ~n ~p in
      let ids = Rng.permutation rng n in
      let outcome =
        Algorithm.run ~scheduler:Algorithm.Sequential rng config graph ~ids
      in
      let dag_names =
        match outcome.Algorithm.dag with
        | Some d -> Some d.Cluster.Dag_id.names
        | None -> None
      in
      outcome.Algorithm.converged
      && Legitimacy.is_legitimate ?dag_names config graph ~ids
           outcome.Algorithm.assignment)

let qcheck_cases = List.map QCheck_alcotest.to_alcotest [ prop_outputs_legitimate ]

let suite =
  [
    Alcotest.test_case "Lemma 1: density correct at step 2" `Quick
      test_lemma1_density_by_round_two;
    Alcotest.test_case "Lemma 2: rounds bounded by DAG≺ height" `Quick
      test_lemma2_rounds_bounded_by_dag_height;
    Alcotest.test_case "Lemma 2: DAG≺ height within the value space" `Quick
      test_lemma2_dag_height_value_space;
    Alcotest.test_case "§3: fewer heads at higher intensity" `Slow
      test_head_count_decreases_with_intensity;
    Alcotest.test_case "§4.3 (iii): heads >= 3 hops apart" `Quick
      test_fusion_claim_iii_separation;
    Alcotest.test_case "§4.3 (i): heads not off-centered" `Quick
      test_fusion_claim_i_head_centrality;
    Alcotest.test_case "algorithm outputs are legitimate" `Quick
      test_algorithm_outputs_legitimate;
    Alcotest.test_case "perturbed states are illegitimate" `Quick
      test_perturbed_assignment_is_illegitimate;
    Alcotest.test_case "recovered states are legitimate" `Quick
      test_recovered_state_legitimate;
  ]
  @ qcheck_cases
