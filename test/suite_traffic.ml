(* The data-plane workload's proof obligations.

   (a) Executor independence: the same workload configuration attached to
       the dense, sparse and flat (1 and 4 domains) executors is
       bit-identical on every observable — per-message planes, per-round
       series, counters, batteries — over random geometric worlds with
       lossy data channels, a crash/rejoin burst and energy drain
       (QCheck; this is the freshness-stamp-projection argument of
       [Route.of_distributed] tested empirically).
   (b) Directed pins: a message re-routes around its crashed relay and
       still delivers (monitor invalidation); an unreachable destination
       expires at exactly [born + ttl]; the retry/backoff schedule under
       total frame loss is the documented deterministic sequence.
   (c) The flat-path workload hook allocates O(1) per idle round — an
       attached-but-idle workload must not scale the quiet-round cost
       with the network. *)

module Graph = Ss_topology.Graph
module Vec2 = Ss_geom.Vec2
module Channel = Ss_radio.Channel
module Churn = Ss_engine.Churn
module Engine = Ss_engine.Engine
module Flat = Ss_engine.Flat
module Distributed = Ss_cluster.Distributed
module Rng = Ss_prng.Rng
module W = Ss_traffic.Workload
module Route = Ss_traffic.Route

module P = Distributed.Make (struct
  let params = Distributed.default_params
end)

module E = Engine.Make (P)
module F = Flat.Make (P)

let quiet_rounds = Distributed.default_params.Distributed.cache_ttl + 2

(* ------------------------------------------------------- directed pins *)

(* Wheel: head-ish center 0 bridges every cross-ring pair (it ties the
   ring claimer on distance and wins on index), so crashing it mid-run
   forces monitor invalidations and ring re-routes. *)
let wheel () =
  let positions =
    Array.init 7 (fun i ->
        if i = 0 then Vec2.v 0.5 0.5
        else
          let a = float_of_int (i - 1) *. (Float.pi /. 3.0) in
          Vec2.v (0.5 +. (0.3 *. cos a)) (0.5 +. (0.3 *. sin a)))
  in
  let ring = List.init 6 (fun i -> (i + 1, ((i + 1) mod 6) + 1)) in
  let spokes = List.init 6 (fun i -> (0, i + 1)) in
  Graph.of_edges ~positions ~n:7 (ring @ spokes)

let test_retry_after_relay_crash () =
  let g = wheel () in
  let cfg =
    {
      W.default_config with
      W.seed = 11;
      rate = 1.0;
      first_round = 12;
      last_round = Some 20;
      ttl = 20;
      jitter = false;
    }
  in
  let w = W.create cfg ~n:7 in
  let churn =
    Churn.compose
      [
        Churn.schedule [ (14, [ Churn.Crash 0 ]) ];
        Churn.schedule [ (26, [ Churn.Join 0 ]) ];
      ]
  in
  let rng = Rng.create ~seed:3 in
  ignore
    (E.run ~mode:E.Dense ~quiet_rounds ~max_rounds:60 ~churn
       ~workload:(W.hook w) rng g);
  let t = W.totals w in
  Alcotest.(check bool) "offered some traffic" true (t.W.offered > 0);
  Alcotest.(check int) "nothing expired (ring always progresses)" 0
    t.W.expired;
  Alcotest.(check int) "all traffic accounted" t.W.offered
    (t.W.delivered + t.W.died);
  Alcotest.(check bool)
    (Printf.sprintf "monitor invalidated the crashed relay (%d)"
       t.W.invalidations)
    true (t.W.invalidations >= 1);
  Alcotest.(check bool) "delivered despite the crash" true (t.W.delivered > 0)

(* Two components: cross-component messages must expire at exactly
   [born + ttl], same-component ones deliver on the adjacent edge. *)
let test_ttl_expiry () =
  let positions = [| Vec2.v 0.0 0.0; Vec2.v 0.1 0.0; Vec2.v 0.9 0.0; Vec2.v 1.0 0.0 |] in
  let g = Graph.of_edges ~positions ~n:4 [ (0, 1); (2, 3) ] in
  let cfg =
    {
      W.default_config with
      W.seed = 5;
      rate = 3.0;
      last_round = Some 1;
      ttl = 8;
      jitter = false;
    }
  in
  let w = W.create cfg ~n:4 in
  let rng = Rng.create ~seed:9 in
  ignore
    (E.run ~mode:E.Dense ~quiet_rounds ~max_rounds:30 ~workload:(W.hook w)
       rng g);
  let t = W.totals w in
  let s = W.series w in
  Alcotest.(check int) "three arrivals in round 1" 3 t.W.offered;
  Alcotest.(check bool) "a cross-component message existed" true
    (t.W.expired >= 1);
  Alcotest.(check int) "everything delivered or expired" t.W.offered
    (t.W.delivered + t.W.expired);
  (* born = 1, ttl = 8: the drop happens in round 9, nowhere else. *)
  Alcotest.(check int) "expiry lands at born + ttl" t.W.expired
    s.W.s_expired.(8);
  Array.iteri
    (fun i e -> if i <> 8 then Alcotest.(check int) "no other drops" 0 e)
    s.W.s_expired

(* Two nodes, every frame lost: the retry schedule is pure arithmetic.
   base 2, cap 8, 3 attempts per hop, no jitter, born in round 1:
   attempts at 1,3,7 (backoffs 2,4), ban+reroute at 8 finds nothing
   (stall, backoff 2), bans cleared so the cycle repeats shifted by 9:
   10,12,16, stall 17, 19,21,25, stall 26, 28 — then the TTL (28) drops
   the message in round 29. *)
let test_backoff_schedule () =
  let positions = [| Vec2.v 0.0 0.0; Vec2.v 0.2 0.0 |] in
  let g = Graph.of_edges ~positions ~n:2 [ (0, 1) ] in
  let cfg =
    {
      W.default_config with
      W.seed = 7;
      channel = Channel.bernoulli 0.0;
      rate = 1.0;
      last_round = Some 1;
      ttl = 28;
      max_attempts = 3;
      backoff_base = 2;
      backoff_cap = 8;
      jitter = false;
    }
  in
  let w = W.create cfg ~n:2 in
  let rng = Rng.create ~seed:1 in
  ignore
    (E.run ~mode:E.Dense ~quiet_rounds ~max_rounds:40 ~workload:(W.hook w)
       rng g);
  let t = W.totals w in
  let s = W.series w in
  let attempt_rounds = ref [] in
  Array.iteri
    (fun i a -> if a > 0 then attempt_rounds := (i + 1) :: !attempt_rounds)
    s.W.s_attempts;
  Alcotest.(check (list int))
    "deterministic retry schedule"
    [ 1; 3; 7; 10; 12; 16; 19; 21; 25; 28 ]
    (List.rev !attempt_rounds);
  Alcotest.(check int) "every attempt failed" t.W.attempts t.W.failures;
  Alcotest.(check int) "three ban-and-reroute cycles" 3 t.W.reroutes;
  Alcotest.(check int) "three stalls on the banned-out view" 3 t.W.stalls;
  Alcotest.(check int) "expired, never delivered" 1 t.W.expired;
  Alcotest.(check int) "drop at born + ttl" 1 s.W.s_expired.(28)

(* --------------------------------- (a): executor-independence battery *)

type wcase = {
  w_seed : int;
  w_n : int;
  w_radius : float;
  w_chan : int; (* 0 perfect / 1 bernoulli / 2 bursty *)
  w_burst : bool;
  w_energy : bool;
}

let gen_wcase =
  QCheck.Gen.(
    map
      (fun (w_seed, w_n, w_radius, w_chan, (w_burst, w_energy)) ->
        { w_seed; w_n; w_radius; w_chan; w_burst; w_energy })
      (tup5 (int_bound 10_000) (int_range 20 80)
         (float_range 0.2 0.35) (int_bound 2) (tup2 bool bool)))

let print_wcase c =
  Printf.sprintf "{seed=%d; n=%d; r=%.3f; chan=%d; burst=%b; energy=%b}"
    c.w_seed c.w_n c.w_radius c.w_chan c.w_burst c.w_energy

let data_channel = function
  | 0 -> Channel.perfect
  | 1 -> Channel.bernoulli 0.8
  | _ ->
      Channel.bursty ~seed:5 ~tau_good:0.95 ~tau_bad:0.3 ~p_fade:0.1
        ~p_recover:0.4

let build_world c =
  let r = Rng.create ~seed:c.w_seed in
  let positions =
    Array.init c.w_n (fun _ ->
        let x = Rng.float r 1.0 in
        let y = Rng.float r 1.0 in
        Vec2.v x y)
  in
  Graph.unit_disk ~radius:c.w_radius positions

type exec = Dense | Sparse | FlatD of int

let run_exec c g exec =
  let cfg =
    {
      W.default_config with
      W.seed = c.w_seed + 1;
      channel = data_channel c.w_chan;
      rate = 2.0;
      last_round = Some 30;
      ttl = 12;
      energy =
        (if c.w_energy then
           Some { W.default_energy with W.capacity = 40.0; duty_every = 4 }
         else None);
    }
  in
  let w = W.create cfg ~n:(Graph.node_count g) in
  let churn =
    Churn.compose
      ((if c.w_burst then
          [
            Churn.crash_fraction ~round:10 ~fraction:0.2;
            Churn.join_all ~round:22;
          ]
        else [])
      @ [ W.churn_feed w ])
  in
  let rng = Rng.create ~seed:(c.w_seed + 2) in
  let states, alive, rounds =
    match exec with
    | Dense ->
        let r =
          E.run ~mode:E.Dense ~quiet_rounds ~max_rounds:70 ~churn
            ~workload:(W.hook w) rng g
        in
        (r.E.states, r.E.alive, r.E.rounds)
    | Sparse ->
        let r =
          E.run
            ~mode:(E.Sparse { warm = Some Distributed.pending_expiry })
            ~quiet_rounds ~max_rounds:70 ~churn ~workload:(W.hook w) rng g
        in
        (r.E.states, r.E.alive, r.E.rounds)
    | FlatD domains ->
        let r =
          F.run ~quiet_rounds ~max_rounds:70 ~churn ~domains
            ~workload:(W.hook w) rng g
        in
        (r.F.states, r.F.alive, r.F.rounds)
  in
  (w, states, alive, rounds)

let same (wa, sa, la, ra) (wb, sb, lb, rb) =
  W.equal wa wb && ra = rb
  && Array.for_all2 P.equal_state sa sb
  && la = lb

let prop_workload_executor_independent =
  QCheck.Test.make ~count:12 ~name:"workload: dense = sparse = flat x{1,4}"
    (QCheck.make ~print:print_wcase gen_wcase)
    (fun c ->
      let g = build_world c in
      let dense = run_exec c g Dense in
      let sparse = run_exec c g Sparse in
      let flat1 = run_exec c g (FlatD 1) in
      let flat4 = run_exec c g (FlatD 4) in
      same dense sparse && same dense flat1 && same dense flat4)

(* -------------------------------- (c): idle workload hook allocation *)

let idle_hook_alloc n =
  let side = int_of_float (sqrt (float_of_int n)) in
  let positions =
    Array.init n (fun i ->
        Vec2.v
          (float_of_int (i mod side) /. float_of_int side)
          (float_of_int (i / side) /. float_of_int side))
  in
  let g = Graph.unit_disk ~radius:(1.6 /. float_of_int side) positions in
  let cfg = { W.default_config with W.seed = 3; rate = 0.0 } in
  let w = W.create cfg ~n in
  let w_lo = ref 0.0 and w_hi = ref 0.0 in
  let hook ~round ~graph ~alive ~read =
    if round = 40 then w_lo := Gc.minor_words ()
    else if round = 80 then w_hi := Gc.minor_words ();
    W.hook w ~round ~graph ~alive ~read
  in
  let rng = Rng.create ~seed:4 in
  ignore (F.run ~quiet_rounds:2 ~max_rounds:90 ~workload:hook rng g);
  !w_hi -. !w_lo

let test_idle_hook_alloc () =
  let small = idle_hook_alloc 256 in
  let big = idle_hook_alloc 2048 in
  Alcotest.(check bool)
    (Printf.sprintf
       "idle workload hook allocation size-independent (256: %.0f, 2048: \
        %.0f)"
       small big)
    true
    (big < (2.0 *. small) +. 16384.0)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest [ prop_workload_executor_independent ]

let suite =
  [
    Alcotest.test_case "retry + reroute after relay crash" `Quick
      test_retry_after_relay_crash;
    Alcotest.test_case "TTL expiry at exactly born + ttl" `Quick
      test_ttl_expiry;
    Alcotest.test_case "deterministic backoff schedule" `Quick
      test_backoff_schedule;
    Alcotest.test_case "idle workload hook allocates O(1) per round" `Quick
      test_idle_hook_alloc;
  ]
  @ qcheck_cases
