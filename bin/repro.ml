(* Command-line driver: one subcommand per paper table/figure plus the
   extension experiments. `repro all` regenerates everything; every tabular
   subcommand takes `--csv` to emit machine-readable output instead of the
   boxed table. *)

open Cmdliner
module E = Ss_experiments
module Table = Ss_stats.Table

let seed_arg =
  let doc = "Base PRNG seed; every run derives an independent sub-stream." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let runs_arg default =
  let doc = "Number of independent runs to average over." in
  Arg.(value & opt int default & info [ "runs" ] ~docv:"RUNS" ~doc)

let jobs_arg =
  let doc =
    "Number of domains executing runs in parallel. Every run draws from its \
     own positional PRNG sub-stream and results are collected in run order, \
     so the output is bit-identical for every value of $(docv)."
  in
  let env = Cmd.Env.info "REPRO_JOBS" ~doc:"Default for $(b,--jobs)." in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~env ~docv:"N" ~doc)

let intensity_arg =
  let doc = "Poisson intensity (expected node count in the unit square)." in
  Arg.(value & opt float 1000.0 & info [ "intensity" ] ~docv:"LAMBDA" ~doc)

let csv_arg =
  let doc = "Emit CSV instead of a boxed table." in
  Arg.(value & flag & info [ "csv" ] ~doc)

let sparse_arg =
  let doc =
    "Use the engine's sparse dirty-set executor instead of the dense round \
     walk. Output is bit-identical (the sparse differential test battery is \
     the contract); per-round cost becomes proportional to the perturbed \
     region instead of the network."
  in
  Arg.(value & flag & info [ "sparse" ] ~doc)

let cell_arg =
  let doc =
    "Replay mode (with $(b,--run)): re-execute exactly one sweep cell/run \
     pair instead of the sweep — the command printed in the table's replay \
     column — and exit non-zero iff the run is (still) anomalous."
  in
  Arg.(value & opt (some int) None & info [ "cell" ] ~docv:"CELL" ~doc)

let run_index_arg =
  let doc = "Replay mode (with $(b,--cell)): the run index to re-execute." in
  Arg.(value & opt (some int) None & info [ "run" ] ~docv:"RUN" ~doc)

(* Replay-mode plumbing shared by campaign/adversary: both --cell and
   --run, or neither. *)
let replay_request ~cmd cell run_index =
  match (cell, run_index) with
  | Some c, Some r -> Some (c, r)
  | None, None -> None
  | _ ->
      Fmt.epr "repro %s: --cell and --run must be given together@." cmd;
      exit 2

let report_replay ~label verdict =
  match verdict with
  | Some reason ->
      Fmt.pr "replay %s: ANOMALOUS — %s@." label reason;
      exit 1
  | None -> Fmt.pr "replay %s: clean@." label

let output ~csv table =
  if csv then print_string (Table.to_csv table) else Table.print table

let table1_cmd =
  let doc = "Table 1 / Figure 1: the worked 10-node example." in
  let run csv =
    let result = E.Exp_example.run () in
    output ~csv result.E.Exp_example.table;
    if not csv then
      List.iter
        (fun (head, members) ->
          Fmt.pr "cluster head %s: {%a}@." head
            Fmt.(list ~sep:comma string)
            members)
        result.E.Exp_example.clusters
  in
  Cmd.v (Cmd.info "table1" ~doc) Term.(const run $ csv_arg)

let table2_cmd =
  let doc = "Table 2: knowledge schedule of the distributed protocol." in
  let run seed runs jobs csv =
    output ~csv
      (E.Exp_schedule.to_table
         (E.Exp_schedule.run ~seed ~runs ~domains:jobs ()))
  in
  Cmd.v (Cmd.info "table2" ~doc)
    Term.(const run $ seed_arg $ runs_arg 10 $ jobs_arg $ csv_arg)

let table3_cmd =
  let doc = "Table 3: steps to build the DAG of local names." in
  let run seed runs jobs intensity csv =
    output ~csv
      (E.Exp_dag_steps.to_table
         (E.Exp_dag_steps.run ~seed ~runs ~domains:jobs ~intensity ()))
  in
  Cmd.v (Cmd.info "table3" ~doc)
    Term.(
      const run $ seed_arg $ runs_arg 30 $ jobs_arg $ intensity_arg $ csv_arg)

let table4_cmd =
  let doc = "Table 4: cluster features on random geometric graphs." in
  let run seed runs jobs intensity csv =
    output ~csv
      (E.Exp_features.to_table
         ~title:"Table 4 — cluster features on a random geometric graph"
         (E.Exp_features.run_random ~seed ~runs ~domains:jobs ~intensity ()))
  in
  Cmd.v (Cmd.info "table4" ~doc)
    Term.(
      const run $ seed_arg $ runs_arg 30 $ jobs_arg $ intensity_arg $ csv_arg)

let table5_cmd =
  let doc = "Table 5: cluster features on the adversarial row-major grid." in
  let run seed runs jobs csv =
    output ~csv
      (E.Exp_features.to_table
         ~title:
           "Table 5 — cluster features on a grid with adversarial (row-major) \
            ids"
         (E.Exp_features.run_grid ~seed ~runs ~domains:jobs ()))
  in
  Cmd.v (Cmd.info "table5" ~doc)
    Term.(const run $ seed_arg $ runs_arg 10 $ jobs_arg $ csv_arg)

let figures_cmd =
  let doc = "Figures 2 and 3: grid clusterings with and without the DAG." in
  let dir_arg =
    Arg.(
      value & opt string "figures"
      & info [ "out" ] ~docv:"DIR" ~doc:"Output directory for SVG files.")
  in
  let run dir = E.Exp_figures.print ~dir () in
  Cmd.v (Cmd.info "figures" ~doc) Term.(const run $ dir_arg)

let mobility_cmd =
  let doc =
    "Section 5 mobility experiment: cluster-head retention, improved vs \
     basic rules."
  in
  let count_arg =
    Arg.(
      value
      & opt int E.Exp_mobility.default_params.E.Exp_mobility.count
      & info [ "count" ] ~docv:"N" ~doc:"Number of nodes.")
  in
  let horizon_arg =
    Arg.(
      value
      & opt float E.Exp_mobility.default_params.E.Exp_mobility.horizon
      & info [ "horizon" ] ~docv:"SECONDS"
          ~doc:"Simulated duration per run (the paper uses 900 s).")
  in
  let run seed runs jobs count horizon csv =
    let params =
      {
        E.Exp_mobility.default_params with
        E.Exp_mobility.seed;
        runs;
        count;
        horizon;
      }
    in
    output ~csv
      (E.Exp_mobility.to_table (E.Exp_mobility.run ~params ~domains:jobs ()))
  in
  Cmd.v (Cmd.info "mobility" ~doc)
    Term.(
      const run $ seed_arg $ runs_arg 5 $ jobs_arg $ count_arg $ horizon_arg
      $ csv_arg)

let selfstab_cmd =
  let doc =
    "Self-stabilization measurements: recovery after corruption, \
     convergence under frame loss."
  in
  let run seed runs jobs csv =
    output ~csv
      (E.Exp_selfstab.recovery_table
         (E.Exp_selfstab.measure_recovery ~seed ~runs ~domains:jobs ()));
    output ~csv
      (E.Exp_selfstab.loss_table
         (E.Exp_selfstab.measure_loss ~seed ~runs ~domains:jobs ()))
  in
  Cmd.v (Cmd.info "selfstab" ~doc)
    Term.(const run $ seed_arg $ runs_arg 10 $ jobs_arg $ csv_arg)

let compare_cmd =
  let doc =
    "Metric comparison: head retention of density vs degree, lowest-id and \
     max-min."
  in
  let run seed runs jobs csv =
    output ~csv
      (E.Exp_compare.to_table (E.Exp_compare.run ~seed ~runs ~domains:jobs ()))
  in
  Cmd.v (Cmd.info "compare" ~doc)
    Term.(const run $ seed_arg $ runs_arg 5 $ jobs_arg $ csv_arg)

let energy_cmd =
  let doc =
    "Extension: network lifetime with and without the energy-aware election."
  in
  let run seed runs jobs csv =
    output ~csv
      (E.Exp_energy.to_table (E.Exp_energy.run ~seed ~runs ~domains:jobs ()))
  in
  Cmd.v (Cmd.info "energy" ~doc)
    Term.(const run $ seed_arg $ runs_arg 5 $ jobs_arg $ csv_arg)

let hierarchy_cmd =
  let doc = "Extension: cluster-head population per hierarchy level." in
  let run seed runs jobs csv =
    output ~csv
      (E.Exp_hierarchy.to_table
         (E.Exp_hierarchy.run ~seed ~runs ~domains:jobs ()))
  in
  Cmd.v (Cmd.info "hierarchy" ~doc)
    Term.(const run $ seed_arg $ runs_arg 10 $ jobs_arg $ csv_arg)

let bounds_cmd =
  let doc =
    "Extension: stabilization cost and structure churn as a function of \
     node speed."
  in
  let run seed runs jobs csv =
    output ~csv
      (E.Exp_mobility_bounds.to_table
         (E.Exp_mobility_bounds.run ~seed ~runs ~domains:jobs ()))
  in
  Cmd.v (Cmd.info "bounds" ~doc)
    Term.(const run $ seed_arg $ runs_arg 3 $ jobs_arg $ csv_arg)

let links_cmd =
  let doc =
    "Extension: stabilization cost and churn as a function of the link \
     failure rate."
  in
  let run seed runs jobs csv =
    output ~csv
      (E.Exp_link_failure.to_table
         (E.Exp_link_failure.run ~seed ~runs ~domains:jobs ()))
  in
  Cmd.v (Cmd.info "links" ~doc)
    Term.(const run $ seed_arg $ runs_arg 3 $ jobs_arg $ csv_arg)

let churn_cmd =
  let doc =
    "Extension: in-place recovery from within-run churn — node crashes, \
     rejoins, sleep/wake cycles and link flapping hitting a single engine \
     run."
  in
  let churn_intensity_arg =
    let doc =
      "Poisson intensity of the deployment (expected node count in the unit \
       square)."
    in
    Arg.(value & opt float 300.0 & info [ "intensity" ] ~docv:"LAMBDA" ~doc)
  in
  let run seed runs jobs sparse intensity csv =
    let spec = E.Scenario.poisson ~intensity ~radius:0.1 () in
    let rows = E.Exp_churn.run ~seed ~runs ~domains:jobs ~sparse ~spec () in
    output ~csv (E.Exp_churn.to_table rows);
    output ~csv (E.Exp_churn.events_table rows)
  in
  Cmd.v (Cmd.info "churn" ~doc)
    Term.(
      const run $ seed_arg $ runs_arg 5 $ jobs_arg $ sparse_arg
      $ churn_intensity_arg $ csv_arg)

let motion_cmd =
  let doc =
    "Extension: cluster stability under continuous motion — the engine's \
     per-round mobility hook drives random-walk and random-waypoint fleets \
     at pedestrian (0-1.6 m/s) and vehicular (0-10 m/s) speeds over an \
     incrementally maintained unit-disk topology; reports cluster-head \
     lifetime, re-election rate and time-in-legitimacy vs speed."
  in
  let motion_intensity_arg =
    let doc =
      "Poisson intensity of the deployment (expected node count in the unit \
       square)."
    in
    Arg.(value & opt float 300.0 & info [ "intensity" ] ~docv:"LAMBDA" ~doc)
  in
  let rounds_arg =
    let doc =
      "Round budget; every regime executes exactly this many rounds so the \
       per-round metrics share a denominator."
    in
    Arg.(value & opt int 200 & info [ "rounds" ] ~docv:"ROUNDS" ~doc)
  in
  let dt_arg =
    let doc = "Simulated seconds the fleet advances per engine round." in
    Arg.(value & opt float 1.0 & info [ "dt" ] ~docv:"SECONDS" ~doc)
  in
  let tau_arg =
    let doc =
      "Per-frame delivery probability (Bernoulli channel); 1.0 is the \
       perfect channel."
    in
    Arg.(value & opt float 1.0 & info [ "tau" ] ~docv:"TAU" ~doc)
  in
  let churn_flag_arg =
    let doc =
      "Additionally crash 20% of the nodes a third of the way in and rejoin \
       them two thirds of the way in — discrete churn on top of the \
       continuous rewiring."
    in
    Arg.(value & flag & info [ "churn" ] ~doc)
  in
  let run seed runs jobs sparse intensity rounds dt tau with_churn csv =
    let spec = E.Scenario.poisson ~intensity ~radius:0.1 () in
    let channel = Ss_radio.Channel.bernoulli tau in
    let churn =
      if with_churn then
        Some
          (Ss_engine.Churn.compose
             [
               Ss_engine.Churn.crash_fraction ~round:(rounds / 3)
                 ~fraction:0.2;
               Ss_engine.Churn.join_all ~round:(2 * rounds / 3);
             ])
      else None
    in
    output ~csv
      (E.Exp_motion.to_table
         (E.Exp_motion.run ~seed ~runs ~domains:jobs ~sparse ~spec ~channel
            ?churn ~dt ~rounds ()))
  in
  Cmd.v (Cmd.info "motion" ~doc)
    Term.(
      const run $ seed_arg $ runs_arg 5 $ jobs_arg $ sparse_arg
      $ motion_intensity_arg $ rounds_arg $ dt_arg $ tau_arg $ churn_flag_arg
      $ csv_arg)

let flat_cmd =
  let doc =
    "Extension: the flat-memory executor at scale — unit-disk deployments \
     at constant expected degree run through the struct-of-arrays round \
     loop under a crash/rejoin burst schedule; at small sizes the typed \
     sparse executor cross-checks every observable. Exits non-zero on \
     divergence."
  in
  let smoke_arg =
    let doc = "Small sizes only (all cross-checked); for CI." in
    Arg.(value & flag & info [ "smoke" ] ~doc)
  in
  let run seed smoke csv =
    let sizes, check_upto =
      if smoke then ([ 500; 1_000; 2_000 ], 2_000)
      else (E.Exp_flat.default_sizes, 3_000)
    in
    let rows = E.Exp_flat.run ~seed ~sizes ~check_upto () in
    output ~csv (E.Exp_flat.to_table rows);
    if not (E.Exp_flat.verified rows) then begin
      Fmt.epr "ERROR: flat executor diverged from the sparse reference@.";
      exit 1
    end
  in
  Cmd.v (Cmd.info "flat" ~doc)
    Term.(const run $ seed_arg $ smoke_arg $ csv_arg)

let campaign_cmd =
  let doc =
    "Robustness: adversarial fault-campaign sweep over (corruption fraction \
     x channel x crash churn x scheduler x Byzantine adversary), with the \
     online invariant monitor classifying every non-converged run, \
     containment metrics for Byzantine cells and per-run replay pointers \
     for anomalies."
  in
  let smoke_arg =
    let doc =
      "Tiny fixed-seed grid (8 cells, 1 run each, including a Byzantine x \
       bursty cell) exercising the monitor path in seconds; used by CI."
    in
    Arg.(value & flag & info [ "smoke" ] ~doc)
  in
  let strict_arg =
    let doc =
      "Exit non-zero when any grid row degraded to a failed (raising) run. \
       Graceful degradation still prints the full table either way; this \
       flag lets CI gate on it."
    in
    Arg.(value & flag & info [ "strict" ] ~doc)
  in
  let run seed runs jobs sparse smoke strict cell run_index csv =
    let grid, spec, runs, max_rounds =
      if smoke then
        ( E.Exp_campaign.smoke_grid,
          E.Scenario.uniform ~count:30 ~radius:0.2 (),
          1,
          800 )
      else (E.Exp_campaign.default_grid, E.Exp_campaign.default_spec, runs, 1_500)
    in
    (match replay_request ~cmd:"campaign" cell run_index with
    | Some (cell, run) ->
        let c, verdict =
          E.Exp_campaign.replay ~seed ~sparse ~spec ~grid ~max_rounds ~cell
            ~run ()
        in
        report_replay
          ~label:
            (Printf.sprintf "cell %d (%s) run %d" cell
               (String.concat "/" (E.Exp_campaign.cell_label c))
               run)
          verdict;
        exit 0
    | None -> ());
    let rows =
      E.Exp_campaign.run ~seed ~runs ~domains:jobs ~sparse ~spec ~grid
        ~max_rounds ()
    in
    let replay_prefix =
      Printf.sprintf "repro campaign --seed %d%s%s" seed
        (if smoke then " --smoke" else "")
        (if sparse then " --sparse" else "")
    in
    output ~csv (E.Exp_campaign.to_table ~replay_prefix rows);
    if not csv then begin
      let worst =
        List.fold_left
          (fun acc r -> max acc r.E.Exp_campaign.max_dwell)
          0 rows
      in
      let anomalous =
        List.length (List.filter (fun r -> r.E.Exp_campaign.bad <> []) rows)
      in
      Fmt.pr "worst violation dwell: %d rounds; cells with anomalies: %d/%d@."
        worst anomalous (List.length rows);
      let byz_rows =
        List.filter (fun r -> r.E.Exp_campaign.cell.E.Exp_campaign.c_byz <> None) rows
      in
      if byz_rows <> [] then
        Fmt.pr
          "worst-case containment radius: %d hops (over %d Byzantine cells; \
           uncontained runs: %d)@."
          (List.fold_left
             (fun acc r -> max acc r.E.Exp_campaign.worst_radius)
             0 byz_rows)
          (List.length byz_rows)
          (List.fold_left
             (fun acc r -> acc + r.E.Exp_campaign.uncontained)
             0 byz_rows)
    end;
    let failed = E.Exp_campaign.failed_rows rows in
    if strict && failed <> [] then begin
      Fmt.epr "campaign --strict: %d row(s) contain failed runs@."
        (List.length failed);
      exit 1
    end
  in
  Cmd.v (Cmd.info "campaign" ~doc)
    Term.(
      const run $ seed_arg $ runs_arg 4 $ jobs_arg $ sparse_arg $ smoke_arg
      $ strict_arg $ cell_arg $ run_index_arg $ csv_arg)

let adversary_cmd =
  let doc =
    "Robustness: Byzantine containment sweep over (behavior x Byzantine \
     count x channel) under a permanent adversary — violation radius, \
     time to containment, clean-region legitimacy. Global convergence is \
     not the bar; bounded blast radius is."
  in
  let smoke_arg =
    let doc =
      "Tiny fixed-seed sweep (stuck/liar x 2 channels, 1 run each) \
       exercising the containment path in seconds."
    in
    Arg.(value & flag & info [ "smoke" ] ~doc)
  in
  let run seed runs jobs sparse smoke cell run_index csv =
    let spec, behaviors, counts, channels, runs, max_rounds =
      if smoke then
        ( E.Scenario.uniform ~count:30 ~radius:0.2 (),
          [ Ss_engine.Adversary.Stuck; Ss_engine.Adversary.Liar ],
          [ 2 ],
          [ Ss_radio.Channel.perfect; E.Exp_campaign.default_bursty ],
          1,
          400 )
      else
        ( E.Exp_adversary.default_spec,
          Ss_engine.Adversary.behaviors,
          E.Exp_adversary.default_counts,
          E.Exp_adversary.default_channels,
          runs,
          800 )
    in
    (match replay_request ~cmd:"adversary" cell run_index with
    | Some (cell, run) ->
        let (behavior, count, channel), verdict =
          E.Exp_adversary.replay ~seed ~sparse ~spec ~behaviors ~counts
            ~channels ~max_rounds ~cell ~run ()
        in
        report_replay
          ~label:
            (Fmt.str "cell %d (%s/%d byz/%a) run %d" cell
               (Ss_engine.Adversary.behavior_to_string behavior)
               count Ss_radio.Channel.pp channel run)
          verdict;
        exit 0
    | None -> ());
    let rows =
      E.Exp_adversary.run ~seed ~runs ~domains:jobs ~sparse ~spec ~behaviors
        ~counts ~channels ~max_rounds ()
    in
    let replay_prefix =
      Printf.sprintf "repro adversary --seed %d%s%s" seed
        (if smoke then " --smoke" else "")
        (if sparse then " --sparse" else "")
    in
    output ~csv (E.Exp_adversary.to_table ~replay_prefix rows);
    if not csv then
      Fmt.pr "worst-case containment radius: %d hops; uncontained runs: %d@."
        (List.fold_left
           (fun acc r -> max acc r.E.Exp_adversary.worst_radius)
           0 rows)
        (List.fold_left
           (fun acc (r : E.Exp_adversary.row) ->
             acc + (r.E.Exp_adversary.runs - r.E.Exp_adversary.failed
                    - r.E.Exp_adversary.contained))
           0 rows)
  in
  Cmd.v (Cmd.info "adversary" ~doc)
    Term.(
      const run $ seed_arg $ runs_arg 5 $ jobs_arg $ sparse_arg $ smoke_arg
      $ cell_arg $ run_index_arg $ csv_arg)

let traffic_cmd =
  let doc =
    "Robustness: the data-plane workload routed over the believed cluster \
     hierarchy while it stabilizes — delivery ratio, latency and retries \
     across load x channel x crash-burst cells, with energy drain feeding \
     depleted nodes back into churn. Always ends with the sparse-vs-flat \
     replay of the heavy/lossy/burst cell and exits non-zero if the \
     executors disagree on any observable or the delivery ratio never \
     recovers to 95% of its pre-burst level."
  in
  let executor_arg =
    let doc =
      "Executor for the sweep: $(b,dense), $(b,sparse) or $(b,flat). The \
       verification replay always runs sparse and flat regardless."
    in
    let e =
      Arg.enum
        [
          ("dense", E.Exp_traffic.Dense);
          ("sparse", E.Exp_traffic.Sparse);
          ("flat", E.Exp_traffic.Flat);
        ]
    in
    Arg.(
      value
      & opt e E.Exp_traffic.Sparse
      & info [ "executor" ] ~docv:"EXECUTOR" ~doc)
  in
  let rounds_arg =
    let doc = "Last round with message arrivals; runs extend by the TTL." in
    Arg.(value & opt int 220 & info [ "rounds" ] ~docv:"ROUNDS" ~doc)
  in
  let window_arg =
    let doc = "Cohort width (rounds) for the dip-and-recovery series." in
    Arg.(value & opt int 20 & info [ "window" ] ~docv:"ROUNDS" ~doc)
  in
  let run seed runs jobs executor rounds window csv =
    let rows =
      E.Exp_traffic.run ~seed ~runs ~domains:jobs ~executor ~rounds ~window ()
    in
    output ~csv (E.Exp_traffic.to_table rows);
    let v = E.Exp_traffic.verify ~seed ~rounds ~window () in
    if not csv then begin
      Fmt.pr
        "verification (heavy load, lossy channel, crash burst): sparse vs \
         flat %s@."
        (if v.E.Exp_traffic.v_agree then "bit-identical" else "DIVERGED");
      if not v.E.Exp_traffic.v_agree then
        Fmt.pr "  %s@." v.E.Exp_traffic.v_detail;
      Fmt.pr
        "  delivery %.3f  latency mean %.1f  pre-burst %.3f  dip %.3f  \
         recovered %s@."
        v.E.Exp_traffic.v_ratio v.E.Exp_traffic.v_latency_mean
        v.E.Exp_traffic.v_pre v.E.Exp_traffic.v_dip
        (match v.E.Exp_traffic.v_recovered_at with
        | Some r -> Fmt.str "+%d rounds after the burst" r
        | None -> "never")
    end;
    let recovered = Option.is_some v.E.Exp_traffic.v_recovered_at in
    if not (v.E.Exp_traffic.v_agree && recovered) then begin
      if not v.E.Exp_traffic.v_agree then
        Fmt.epr "ERROR: sparse and flat executors diverged: %s@."
          v.E.Exp_traffic.v_detail;
      if not recovered then
        Fmt.epr
          "ERROR: delivery ratio never recovered to 95%% of its pre-burst \
           level@.";
      exit 1
    end
  in
  Cmd.v (Cmd.info "traffic" ~doc)
    Term.(
      const run $ seed_arg $ runs_arg 2 $ jobs_arg $ executor_arg $ rounds_arg
      $ window_arg $ csv_arg)

let stabilization_cmd =
  let doc =
    "Extension: stabilization-round distributions with 95% bootstrap CIs \
     across n (grid side 32..1000, i.e. ~1k..1M nodes on the flat \
     executor) x density x {DAG names, adversarial flat ids} x channel \
     loss; runs hitting the round cap are reported as censored. Lossy \
     cells tally post-stabilization violations and time-between-violation \
     distributions over a warm-started fixed horizon. Prints a per-curve \
     flat-vs-growing verdict and exits non-zero unless every with-DAG \
     perfect-channel curve is flat in n within CI overlap."
  in
  let smoke_arg =
    let doc =
      "Tiny sides (12, 24) at both densities and namings plus one lossy \
       cell; seconds of runtime, used by CI to gate the flat-in-n claim."
    in
    Arg.(value & flag & info [ "smoke" ] ~doc)
  in
  let run seed jobs smoke csv =
    let cells =
      if smoke then E.Exp_stabilization.smoke_cells
      else E.Exp_stabilization.default_cells
    in
    let ok = E.Exp_stabilization.print ~domains:jobs ~seed ~cells ~csv () in
    if not ok then begin
      Fmt.epr
        "ERROR: a with-DAG curve is not flat in n within CI overlap@.";
      exit 1
    end
  in
  Cmd.v (Cmd.info "stabilization" ~doc)
    Term.(const run $ seed_arg $ jobs_arg $ smoke_arg $ csv_arg)

let all_cmd =
  let doc = "Run every experiment with fast defaults." in
  let run seed jobs =
    let domains = jobs in
    Fmt.pr "== Table 1 ==@.";
    E.Exp_example.print ();
    Fmt.pr "@.== Table 2 ==@.";
    E.Exp_schedule.print ~seed ~runs:5 ~domains ();
    Fmt.pr "@.== Table 3 ==@.";
    E.Exp_dag_steps.print ~seed ~runs:10 ~domains ();
    Fmt.pr "@.== Table 4 ==@.";
    E.Exp_features.print_random ~seed ~runs:10 ~domains ();
    Fmt.pr "@.== Table 5 ==@.";
    E.Exp_features.print_grid ~seed ~runs:5 ~domains ();
    Fmt.pr "@.== Figures 2 & 3 ==@.";
    E.Exp_figures.print ();
    Fmt.pr "@.== Mobility ==@.";
    E.Exp_mobility.print
      ~params:
        {
          E.Exp_mobility.default_params with
          E.Exp_mobility.seed;
          runs = 3;
          horizon = 120.0;
        }
      ~domains ();
    Fmt.pr "@.== Self-stabilization ==@.";
    E.Exp_selfstab.print ~seed ~runs:5 ~domains ();
    Fmt.pr "@.== Metric comparison ==@.";
    E.Exp_compare.print ~seed ~runs:3 ~epochs:30 ~domains ();
    Fmt.pr "@.== Extension: energy ==@.";
    E.Exp_energy.print ~seed ~runs:3 ~domains ();
    Fmt.pr "@.== Extension: hierarchy ==@.";
    E.Exp_hierarchy.print ~seed ~runs:5 ~domains ();
    Fmt.pr "@.== Extension: stabilization vs mobility ==@.";
    E.Exp_mobility_bounds.print ~seed ~runs:2 ~epochs:20 ~domains ();
    Fmt.pr "@.== Extension: stabilization vs link failures ==@.";
    E.Exp_link_failure.print ~seed ~runs:2 ~epochs:15 ~domains ();
    Fmt.pr "@.== Extension: within-run churn ==@.";
    E.Exp_churn.print ~seed ~runs:2
      ~spec:(E.Scenario.poisson ~intensity:150.0 ~radius:0.12 ())
      ~domains ();
    Fmt.pr "@.== Extension: continuous motion ==@.";
    E.Exp_motion.print ~seed ~runs:2 ~rounds:80
      ~spec:(E.Scenario.poisson ~intensity:150.0 ~radius:0.12 ())
      ~domains ();
    Fmt.pr "@.== Extension: flat executor (cross-checked) ==@.";
    Table.print
      (E.Exp_flat.to_table
         (E.Exp_flat.run ~seed ~sizes:[ 500; 1_000 ] ~check_upto:1_000 ()));
    Fmt.pr "@.== Robustness: fault campaign (smoke grid) ==@.";
    Table.print
      (E.Exp_campaign.to_table
         (E.Exp_campaign.run ~seed ~runs:1 ~domains
            ~spec:(E.Scenario.uniform ~count:30 ~radius:0.2 ())
            ~grid:E.Exp_campaign.smoke_grid ~max_rounds:800 ()));
    Fmt.pr "@.== Robustness: Byzantine adversary (smoke) ==@.";
    Table.print
      (E.Exp_adversary.to_table
         (E.Exp_adversary.run ~seed ~runs:1 ~domains
            ~spec:(E.Scenario.uniform ~count:30 ~radius:0.2 ())
            ~behaviors:[ Ss_engine.Adversary.Stuck ]
            ~counts:[ 2 ]
            ~channels:[ Ss_radio.Channel.perfect ]
            ~max_rounds:400 ()));
    Fmt.pr "@.== Robustness: data-plane traffic ==@.";
    E.Exp_traffic.print ~seed ~runs:1 ~domains
      ~spec:(E.Scenario.poisson ~intensity:300.0 ~radius:0.1 ())
      ~rounds:120 ()
  in
  Cmd.v (Cmd.info "all" ~doc) Term.(const run $ seed_arg $ jobs_arg)

(* The single command registry: the group below, the help listing and the
   unknown-subcommand message all derive from this list, so a sweep added
   here is automatically visible everywhere (adversary, motion, flat and
   traffic had previously drifted out of sync). *)
let commands =
  [
    table1_cmd; table2_cmd; table3_cmd; table4_cmd; table5_cmd;
    figures_cmd; mobility_cmd; selfstab_cmd; compare_cmd; energy_cmd;
    hierarchy_cmd; bounds_cmd; links_cmd; churn_cmd; motion_cmd;
    flat_cmd; campaign_cmd; adversary_cmd; traffic_cmd; stabilization_cmd;
    all_cmd;
  ]

let main_cmd =
  let doc =
    "Reproduction of `Self-stabilization in self-organized multihop \
     wireless networks' (Mitton, Fleury, Guerin Lassous, Tixeuil)."
  in
  Cmd.group (Cmd.info "repro" ~version:"1.0.0" ~doc) commands

let () =
  (* Catch unknown subcommands before Cmdliner: fail loudly with the full
     registry instead of a terse parse error, and always exit non-zero. *)
  (match Sys.argv with
  | [||] | [| _ |] -> ()
  | argv ->
      let name = argv.(1) in
      let names = List.map Cmd.name commands in
      if
        String.length name > 0
        && name.[0] <> '-'
        && not (List.mem name names)
      then begin
        Fmt.epr "repro: unknown command '%s'.@.Available commands:@." name;
        List.iter (fun n -> Fmt.epr "  %s@." n) names;
        Fmt.epr "Run 'repro --help' for per-command details.@.";
        exit 2
      end);
  exit (Cmd.eval main_cmd)
